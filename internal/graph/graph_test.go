package graph

import (
	"sort"
	"testing"

	"mosaic/internal/mem"
	"mosaic/internal/trace"
)

func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	if len(g.Offsets) != g.N+1 {
		t.Fatalf("offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != len(g.Edges) {
		t.Fatalf("offset bounds wrong: first=%d last=%d edges=%d", g.Offsets[0], g.Offsets[g.N], len(g.Edges))
	}
	for u := 0; u < g.N; u++ {
		if g.Offsets[u] > g.Offsets[u+1] {
			t.Fatalf("offsets not monotone at %d", u)
		}
	}
	for _, v := range g.Edges {
		if int(v) >= g.N {
			t.Fatalf("edge target %d out of range", v)
		}
	}
}

func TestKroneckerShape(t *testing.T) {
	g := GenerateKronecker(10, 8, 1)
	checkCSR(t, g)
	if g.N != 1024 {
		t.Errorf("N = %d, want 1024", g.N)
	}
	if g.M() != 1024*8 {
		t.Errorf("M = %d, want %d", g.M(), 1024*8)
	}
	if g.Weights != nil {
		t.Error("Kronecker graphs are unweighted")
	}
}

func TestPowerLawSkew(t *testing.T) {
	tw := GenerateTwitter(4096, 16, 2)
	checkCSR(t, tw)
	degs := make([]int, tw.N)
	for u := 0; u < tw.N; u++ {
		degs[u] = tw.Degree(uint32(u))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:tw.N/100] {
		top += d
	}
	// Power-law: the top 1% of vertices should own a large share of edges.
	if float64(top)/float64(tw.M()) < 0.10 {
		t.Errorf("twitter graph not skewed: top 1%% owns %.1f%% of edges",
			100*float64(top)/float64(tw.M()))
	}
	if tw.Weights == nil {
		t.Error("twitter graph should be weighted (SSSP runs on it)")
	}
}

func TestRoadGraphBlockLocality(t *testing.T) {
	// A graph tall enough for several scrambling blocks.
	cols := 16
	rows := 3 * RoadBlockRows
	g := GenerateRoad(rows, cols, 3)
	checkCSR(t, g)
	if g.N != rows*cols {
		t.Fatalf("N = %d", g.N)
	}
	// IDs are scrambled only within blocks: every edge connects nodes in
	// the same or adjacent blocks (real road networks have imperfect but
	// bounded vertex-ordering locality).
	blockLen := RoadBlockRows * cols
	for u := 0; u < g.N; u++ {
		bu := u / blockLen
		for _, v := range g.Neighbors(uint32(u)) {
			bv := int(v) / blockLen
			d := bu - bv
			if d < 0 {
				d = -d
			}
			if d > 1 {
				t.Fatalf("edge %d→%d spans %d blocks", u, v, d)
			}
		}
	}
	// Max degree is bounded (4-connected grid).
	for u := 0; u < g.N; u++ {
		if g.Degree(uint32(u)) > 8 {
			t.Fatalf("road vertex %d has degree %d", u, g.Degree(uint32(u)))
		}
	}
	// Within-block scrambling really happened: a decent share of edges
	// span more than a few rows in ID space.
	far := 0
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			d := int(v) - u
			if d < 0 {
				d = -d
			}
			if d > 8*cols {
				far++
			}
		}
	}
	if float64(far)/float64(g.M()) < 0.5 {
		t.Errorf("scrambling too weak: only %.2f of edges are far", float64(far)/float64(g.M()))
	}
}

func TestWebMoreSkewedThanTwitter(t *testing.T) {
	topShare := func(g *Graph) float64 {
		degs := make([]int, g.N)
		for u := 0; u < g.N; u++ {
			degs[u] = g.Degree(uint32(u))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(degs)))
		top := 0
		for _, d := range degs[:g.N/100] {
			top += d
		}
		return float64(top) / float64(g.M())
	}
	tw := GenerateTwitter(4096, 16, 4)
	wb := GenerateWeb(4096, 16, 4)
	if topShare(wb) <= topShare(tw) {
		t.Errorf("web skew %.3f should exceed twitter skew %.3f", topShare(wb), topShare(tw))
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GenerateTwitter(1024, 8, 7)
	b := GenerateTwitter(1024, 8, 7)
	if a.M() != b.M() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed must generate identical graphs")
		}
	}
}

func testLayout() Layout {
	return Layout{
		Offsets: 0x1000_0000,
		Edges:   0x2000_0000,
		Weights: 0x3000_0000,
		NodeA:   0x4000_0000,
		NodeB:   0x5000_0000,
	}
}

// boundsRecorder checks every recorded access falls inside a known array.
type boundsRecorder struct {
	b   *trace.Builder
	t   *testing.T
	g   *Graph
	lay Layout
}

func (r *boundsRecorder) check(va mem.Addr) {
	l := r.lay
	n, m := mem.Addr(r.g.N), mem.Addr(r.g.M())
	ok := (va >= l.Offsets && va < l.Offsets+(n+1)*idxBytes) ||
		(va >= l.Edges && va < l.Edges+m*idxBytes) ||
		(va >= l.Weights && va < l.Weights+m*idxBytes) ||
		(va >= l.NodeA && va < l.NodeA+n*nodeBytes) ||
		(va >= l.NodeB && va < l.NodeB+n*nodeBytes)
	if !ok {
		r.t.Fatalf("access %#x outside all arrays", uint64(va))
	}
}

func (r *boundsRecorder) Compute(n uint64)     { r.b.Compute(n) }
func (r *boundsRecorder) Load(va mem.Addr)     { r.check(va); r.b.Load(va) }
func (r *boundsRecorder) LoadDep(va mem.Addr)  { r.check(va); r.b.LoadDep(va) }
func (r *boundsRecorder) Store(va mem.Addr)    { r.check(va); r.b.Store(va) }
func (r *boundsRecorder) StoreDep(va mem.Addr) { r.check(va); r.b.StoreDep(va) }

func TestBFSVisitsAndBounds(t *testing.T) {
	g := GenerateTwitter(2048, 8, 5)
	rec := &boundsRecorder{b: trace.NewBuilder("bfs", 1024), t: t, g: g, lay: testLayout()}
	visited := BFS(g, g.LargestComponentSource(), testLayout(), rec, Budget{Max: 1 << 20})
	if visited < g.N/4 {
		t.Errorf("BFS visited only %d of %d", visited, g.N)
	}
	if rec.b.Len() == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestBFSBudgetRespected(t *testing.T) {
	g := GenerateTwitter(2048, 8, 5)
	b := trace.NewBuilder("bfs", 512)
	BFS(g, g.LargestComponentSource(), testLayout(), b, Budget{Max: 500})
	// The budget may be overshot by at most the few accesses of one edge
	// iteration.
	if b.Len() > 510 {
		t.Errorf("recorded %d accesses for budget 500", b.Len())
	}
}

func TestPageRankBounds(t *testing.T) {
	g := GenerateTwitter(1024, 8, 6)
	rec := &boundsRecorder{b: trace.NewBuilder("pr", 1024), t: t, g: g, lay: testLayout()}
	iters := PageRank(g, testLayout(), rec, 3, Budget{Max: 1 << 20})
	if iters != 3 {
		t.Errorf("completed %d iterations, want 3", iters)
	}
}

func TestSSSPSettles(t *testing.T) {
	g := GenerateTwitter(1024, 8, 7)
	rec := &boundsRecorder{b: trace.NewBuilder("sssp", 1024), t: t, g: g, lay: testLayout()}
	settled := SSSP(g, g.LargestComponentSource(), testLayout(), rec, Budget{Max: 1 << 21})
	if settled < g.N/4 {
		t.Errorf("SSSP settled only %d of %d", settled, g.N)
	}
}

func TestSSSPRequiresWeights(t *testing.T) {
	g := GenerateKronecker(8, 4, 8) // unweighted
	if got := SSSP(g, 0, testLayout(), trace.NewBuilder("s", 1), Budget{Max: 100}); got != 0 {
		t.Errorf("SSSP on unweighted graph = %d, want 0", got)
	}
}

func TestBCReaches(t *testing.T) {
	g := GenerateTwitter(1024, 8, 9)
	rec := &boundsRecorder{b: trace.NewBuilder("bc", 1024), t: t, g: g, lay: testLayout()}
	reached := BC(g, g.LargestComponentSource(), testLayout(), rec, Budget{Max: 1 << 21})
	if reached < g.N/4 {
		t.Errorf("BC reached only %d of %d", reached, g.N)
	}
	if rec.b.Len() == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestLargestComponentSource(t *testing.T) {
	g := GenerateTwitter(512, 8, 10)
	src := g.LargestComponentSource()
	for u := 0; u < g.N; u++ {
		if g.Degree(uint32(u)) > g.Degree(src) {
			t.Fatalf("source %d (deg %d) is not max-degree", src, g.Degree(src))
		}
	}
}

func TestBudgetSkipFastForwards(t *testing.T) {
	g := GenerateTwitter(2048, 8, 11)
	full := trace.NewBuilder("full", 1024)
	BFS(g, g.LargestComponentSource(), testLayout(), full, Budget{Max: 1 << 20})
	skipped := trace.NewBuilder("skip", 1024)
	BFS(g, g.LargestComponentSource(), testLayout(), skipped, Budget{Skip: 1000, Max: 1 << 20})
	if skipped.Len() != full.Len()-1000 {
		t.Errorf("skip=1000: recorded %d, want %d", skipped.Len(), full.Len()-1000)
	}
	// The first recorded access matches the full trace at offset 1000.
	if skipped.Trace().At(0).VA != full.Trace().At(1000).VA {
		t.Error("fast-forward changed the execution")
	}
}
