package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PhaseBound confines trace.Phase construction and mutation to the trace
// package. Phase partitions carry a validated invariant — sorted,
// non-overlapping [Lo,Hi) spans that tile the access stream — established
// by Builder.BeginPhase and checked by Phases-validated constructors.
// Raw Phase literals or field writes elsewhere can silently violate that
// invariant, and every per-phase telescoping golden test downstream would
// blame the replay engine instead of the construction site. Reading Phase
// fields and slicing a stream by an already-validated [Lo,Hi) stays free.
var PhaseBound = &Analyzer{
	Name: "phasebound",
	Doc:  "flag raw trace.Phase construction or field mutation outside the trace package",
	Run:  runPhaseBound,
}

func runPhaseBound(p *Package, cfg *Config) []Finding {
	if pathSuffixIn(p.Path, cfg.PhaseOwnerPackages) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t := p.Info.TypeOf(n); isOwnedPhase(t, cfg) {
					out = append(out, p.finding("phasebound", n,
						"raw %s literal — phases must come from trace.Builder.BeginPhase or another Phases-validated constructor", types.TypeString(t, shortQualifier)))
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					out = append(out, phaseFieldWrite(p, cfg, lhs)...)
				}
			case *ast.IncDecStmt:
				out = append(out, phaseFieldWrite(p, cfg, n.X)...)
			case *ast.UnaryExpr:
				// &phases[i] hands out a mutable alias; writes through it
				// escape the assignment check, so forbid taking the address.
				if n.Op.String() == "&" {
					if t := p.Info.TypeOf(n.X); isOwnedPhase(t, cfg) {
						if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); !lit {
							out = append(out, p.finding("phasebound", n,
								"taking the address of a %s — a mutable alias bypasses partition validation", types.TypeString(t, shortQualifier)))
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// phaseFieldWrite flags an assignment target that is a field of a Phase.
func phaseFieldWrite(p *Package, cfg *Config, lhs ast.Expr) []Finding {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	if !isOwnedPhase(s.Recv(), cfg) {
		return nil
	}
	return []Finding{p.finding("phasebound", lhs,
		"write to %s.%s outside the trace package — partition arithmetic belongs to the validated constructors", types.TypeString(s.Recv(), shortQualifier), sel.Sel.Name)}
}

// isOwnedPhase reports whether t is the Phase type of a phase-owner
// package (matched by import-path suffix so synthetic test packages scope
// the same way as the real tree).
func isOwnedPhase(t types.Type, cfg *Config) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Name() != "Phase" {
		return false
	}
	return pathSuffixIn(n.Obj().Pkg().Path(), cfg.PhaseOwnerPackages)
}

// shortQualifier renders package-qualified type names with the bare package
// name ("trace.Phase", not the full import path).
func shortQualifier(p *types.Package) string {
	return p.Name()
}

// pathSuffixIn reports whether path equals or ends with any of the given
// module-relative suffixes ("internal/trace" matches both the real package
// and "synthetic/internal/trace").
func pathSuffixIn(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
