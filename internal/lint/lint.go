// Package lint is mosvet's analysis engine: a stdlib-only static-analysis
// framework (go/parser + go/types with the source importer, zero external
// dependencies) that enforces the repo's project invariants — deterministic
// simulation paths, ordered aggregation, bit-exact float handling, no
// blocking I/O under serving locks, and allocation-free hot kernels.
//
// The analyzers move invariants that golden tests check late and only on
// exercised paths ("counters are bit-identical across pooled/fused/sampled
// replay", "model restore is bit-exact") to compile-time facts: a build
// cannot merge if a simulation path reads the wall clock or a result
// aggregation ranges over an unsorted map.
//
// Findings are suppressed inline with
//
//	//mosvet:ignore <check>[,<check>...] <reason>
//
// on the finding's line or the line above it. The reason text is mandatory:
// an ignore directive without one is itself reported. Two scope directives
// annotate functions via their doc comment: //mosvet:timing marks a function
// as a legitimate wall-clock scope (scheduler ETA, serve metrics) for the
// detclock check, and //mosvet:hotpath opts a function into the hot-path
// hygiene check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path within the module
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	decls map[*types.Func]*ast.FuncDecl // lazy FuncDecl index, see funcDecl
}

// Analyzer is one named check. Per-package analyzers set Run; analyzers
// whose facts span packages (checkpoint completeness, lock ordering) set
// RunModule instead and receive every package at once.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Package, *Config) []Finding
	RunModule func([]*Package, *Config) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetClock,
		MapOrder,
		FloatEq,
		LockIO,
		HotPath,
		CkptFields,
		CodecSym,
		LockOrder,
		PhaseBound,
	}
}

// AnalyzerNames returns the names of every registered analyzer.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the configured analyzers over the packages and returns the
// unsuppressed findings sorted by position. Suppression directives that are
// missing reason text are reported as findings of the pseudo-check "mosvet"
// (they cannot be suppressed).
func Run(pkgs []*Package, cfg *Config) []Finding {
	out, _ := RunInventory(pkgs, cfg)
	return out
}

// RunInventory is Run plus the module's exemption inventory: every
// //mosvet:ignore, ckptexempt, codecskip, and timing directive found in the
// analyzed packages, in deterministic order. The inventory is what the
// committed suppression-audit baseline pins — a new exemption changes the
// inventory and fails the baseline guard until it is re-generated (and
// thereby reviewed) in the same change.
func RunInventory(pkgs []*Package, cfg *Config) ([]Finding, []Suppression) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	dir := collectDirectives(pkgs)
	var raw []Finding
	for _, a := range Analyzers() {
		if !cfg.CheckEnabled(a.Name) {
			continue
		}
		if a.RunModule != nil {
			raw = append(raw, a.RunModule(pkgs, cfg)...)
			continue
		}
		for _, p := range pkgs {
			raw = append(raw, a.Run(p, cfg)...)
		}
	}
	var out []Finding
	for _, f := range raw {
		if !dir.suppressed(f) {
			out = append(out, f)
		}
	}
	out = append(out, dir.malformed...)
	sortFindings(out)
	return out, dir.inventory
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// directivePrefix is the comment marker shared by all mosvet directives.
const directivePrefix = "//mosvet:"

// Suppression is one exemption directive in the analyzed source: an inline
// //mosvet:ignore, a //mosvet:ckptexempt field exclusion, a
// //mosvet:codecskip envelope marker, or a //mosvet:timing clock scope.
// The set of suppressions is the audit surface the committed baseline pins.
type Suppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Directive string   `json:"directive"`
	Checks    []string `json:"checks,omitempty"` // ignore: checks; ckptexempt: field names
	Reason    string   `json:"reason,omitempty"`
}

// directiveKinds is the full directive vocabulary; anything else after
// "//mosvet:" is a typo and is reported (a misspelled directive that
// silently does nothing is worse than no directive).
var directiveKinds = map[string]bool{
	"ignore": true, "timing": true, "hotpath": true,
	"ckptexempt": true, "codecskip": true, "codecpair": true,
}

// inventoried marks the directive kinds that are exemptions from an
// invariant (and therefore belong in the audit baseline). hotpath opts
// *into* stricter checking and codecpair adds a check, so neither is an
// exemption.
var inventoried = map[string]bool{
	"ignore": true, "timing": true, "ckptexempt": true, "codecskip": true,
}

// directives is the module-wide index of every mosvet comment directive:
// the suppression map consulted when filtering findings, the exemption
// inventory, and the malformed-directive findings.
type directives struct {
	// byLine maps filename → line → checks ignored at that line.
	byLine    map[string]map[int][]string
	malformed []Finding
	inventory []Suppression
}

// collectDirectives scans every comment in every package. An ignore
// directive suppresses matching findings on its own line (trailing comment)
// and on the line directly below it (leading comment). The index is
// module-wide: module-level analyzers anchor findings in whichever package
// declares the violated contract, and the shared FileSet keeps filenames
// unambiguous.
func collectDirectives(pkgs []*Package) *directives {
	s := &directives{byLine: make(map[string]map[int][]string)}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.one(p, c)
				}
			}
		}
	}
	sort.Slice(s.inventory, func(i, j int) bool {
		a, b := s.inventory[i], s.inventory[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return s
}

func (s *directives) one(p *Package, c *ast.Comment) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return
	}
	pos := p.Fset.Position(c.Pos())
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return
	}
	kind := fields[0]
	args := fields[1:]
	if !directiveKinds[kind] {
		s.malformed = append(s.malformed, Finding{
			Check: "mosvet", Pos: pos,
			Message: fmt.Sprintf("unknown directive mosvet:%s", kind),
		})
		return
	}
	sup := Suppression{File: pos.Filename, Line: pos.Line, Directive: kind}
	switch kind {
	case "ignore", "ckptexempt":
		noun := "a check name"
		if kind == "ckptexempt" {
			noun = "field names"
		}
		if len(args) == 0 {
			s.malformed = append(s.malformed, Finding{
				Check: "mosvet", Pos: pos,
				Message: fmt.Sprintf("mosvet:%s without %s", kind, noun),
			})
			return
		}
		sup.Checks = strings.Split(args[0], ",")
		if len(args) < 2 {
			s.malformed = append(s.malformed, Finding{
				Check: "mosvet", Pos: pos,
				Message: fmt.Sprintf("mosvet:%s %s without a reason — justify the suppression", kind, args[0]),
			})
			return
		}
		sup.Reason = strings.Join(args[1:], " ")
	default:
		sup.Reason = strings.Join(args, " ")
	}
	if kind == "ignore" {
		lines := s.byLine[pos.Filename]
		if lines == nil {
			lines = make(map[int][]string)
			s.byLine[pos.Filename] = lines
		}
		lines[pos.Line] = append(lines[pos.Line], sup.Checks...)
	}
	if inventoried[kind] {
		s.inventory = append(s.inventory, sup)
	}
}

func (s *directives) suppressed(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, c := range lines[line] {
			if c == f.Check {
				return true
			}
		}
	}
	return false
}

// funcDecl returns the FuncDecl defining fn in this package, building the
// index lazily on first use (only the module-level analyzers need it).
func (p *Package) funcDecl(fn *types.Func) *ast.FuncDecl {
	if p.decls == nil {
		p.decls = make(map[*types.Func]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						p.decls[obj] = fd
					}
				}
			}
		}
	}
	return p.decls[fn]
}

// directiveArgs returns the whitespace-split arguments of a
// //mosvet:<name> directive in a doc comment, or nil when the directive is
// absent (an argument-less directive returns an empty non-nil slice).
func directiveArgs(doc *ast.CommentGroup, name string) []string {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix+name)
		if !ok {
			continue
		}
		if text == "" {
			return []string{}
		}
		if text[0] == ' ' || text[0] == '\t' {
			return strings.Fields(text)
		}
	}
	return nil
}

// hasDirective reports whether a function's doc comment carries the given
// //mosvet:<name> directive (trailing explanation text is allowed).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix+name)
		if !ok {
			continue
		}
		if text == "" || text[0] == ' ' || text[0] == '\t' {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package a function belongs to
// ("" for builtins and error.Error-style universe methods).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgLevelFunc reports whether fn is a package-level function (not a
// method): the distinction between rand.Intn (global generator, forbidden in
// sim paths) and (*rand.Rand).Intn (seeded instance, allowed).
func isPkgLevelFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func (p *Package) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// finding builds a Finding at the given node for the given check.
func (p *Package) finding(check string, node ast.Node, format string, args ...any) Finding {
	return Finding{Check: check, Pos: p.position(node.Pos()), Message: fmt.Sprintf(format, args...)}
}
