// Package lint is mosvet's analysis engine: a stdlib-only static-analysis
// framework (go/parser + go/types with the source importer, zero external
// dependencies) that enforces the repo's project invariants — deterministic
// simulation paths, ordered aggregation, bit-exact float handling, no
// blocking I/O under serving locks, and allocation-free hot kernels.
//
// The analyzers move invariants that golden tests check late and only on
// exercised paths ("counters are bit-identical across pooled/fused/sampled
// replay", "model restore is bit-exact") to compile-time facts: a build
// cannot merge if a simulation path reads the wall clock or a result
// aggregation ranges over an unsorted map.
//
// Findings are suppressed inline with
//
//	//mosvet:ignore <check>[,<check>...] <reason>
//
// on the finding's line or the line above it. The reason text is mandatory:
// an ignore directive without one is itself reported. Two scope directives
// annotate functions via their doc comment: //mosvet:timing marks a function
// as a legitimate wall-clock scope (scheduler ETA, serve metrics) for the
// detclock check, and //mosvet:hotpath opts a function into the hot-path
// hygiene check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path within the module
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package, *Config) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetClock,
		MapOrder,
		FloatEq,
		LockIO,
		HotPath,
	}
}

// AnalyzerNames returns the names of every registered analyzer.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the configured analyzers over the packages and returns the
// unsuppressed findings sorted by position. Suppression directives that are
// missing reason text are reported as findings of the pseudo-check "mosvet"
// (they cannot be suppressed).
func Run(pkgs []*Package, cfg *Config) []Finding {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var out []Finding
	for _, p := range pkgs {
		sup := collectSuppressions(p)
		var raw []Finding
		for _, a := range Analyzers() {
			if !cfg.CheckEnabled(a.Name) {
				continue
			}
			raw = append(raw, a.Run(p, cfg)...)
		}
		for _, f := range raw {
			if !sup.suppressed(f) {
				out = append(out, f)
			}
		}
		out = append(out, sup.malformed...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// directivePrefix is the comment marker shared by all mosvet directives.
const directivePrefix = "//mosvet:"

// suppressions indexes //mosvet:ignore directives by file and line.
type suppressions struct {
	// byLine maps filename → line → checks ignored at that line.
	byLine    map[string]map[int][]string
	malformed []Finding
}

// collectSuppressions scans every comment in the package for ignore
// directives. A directive suppresses matching findings on its own line
// (trailing comment) and on the line directly below it (leading comment).
func collectSuppressions(p *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix+"ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					s.malformed = append(s.malformed, Finding{
						Check:   "mosvet",
						Pos:     pos,
						Message: "mosvet:ignore without a check name",
					})
					continue
				}
				checks := strings.Split(fields[0], ",")
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Check:   "mosvet",
						Pos:     pos,
						Message: fmt.Sprintf("mosvet:ignore %s without a reason — justify the suppression", fields[0]),
					})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], checks...)
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(f Finding) bool {
	lines := s.byLine[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, c := range lines[line] {
			if c == f.Check {
				return true
			}
		}
	}
	return false
}

// hasDirective reports whether a function's doc comment carries the given
// //mosvet:<name> directive (trailing explanation text is allowed).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix+name)
		if !ok {
			continue
		}
		if text == "" || text[0] == ' ' || text[0] == '\t' {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package a function belongs to
// ("" for builtins and error.Error-style universe methods).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPkgLevelFunc reports whether fn is a package-level function (not a
// method): the distinction between rand.Intn (global generator, forbidden in
// sim paths) and (*rand.Rand).Intn (seeded instance, allowed).
func isPkgLevelFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func (p *Package) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// finding builds a Finding at the given node for the given check.
func (p *Package) finding(check string, node ast.Node, format string, args ...any) Finding {
	return Finding{Check: check, Pos: p.position(node.Pos()), Message: fmt.Sprintf(format, args...)}
}
