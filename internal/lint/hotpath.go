package lint

import (
	"go/ast"
	"go/types"
)

// HotPath enforces hygiene in functions annotated //mosvet:hotpath — the
// per-access replay kernels (RunBatch/replayRange, Hierarchy.Access, the
// Translate memo) whose cost is multiplied by every access of every layout
// of every sweep. Inside an annotated function: no defer (per-call overhead
// and hidden unlock ordering), no fmt calls (variadic any boxing allocates
// on the hot path), no map literals or make(map) (hash-table allocation per
// call — hoist to construction), and no interface-converting conversions
// (each one is a potential heap allocation per access). Cold error paths
// inside a kernel use typed errors (lazily formatted) instead of
// fmt.Errorf; genuinely cold code inside an annotated function takes a
// //mosvet:ignore hotpath with the justification.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid defer, fmt, map allocation, and interface conversions in //mosvet:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Package, cfg *Config) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.DeferStmt:
					out = append(out, p.finding("hotpath", n,
						"defer in hot path — per-call overhead; restructure for explicit cleanup"))
				case *ast.CompositeLit:
					if t := p.Info.TypeOf(n); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							out = append(out, p.finding("hotpath", n,
								"map literal in hot path — allocates a hash table per call; hoist to construction"))
						}
					}
				case *ast.CallExpr:
					out = append(out, hotPathCall(p, n)...)
				}
				return true
			})
		}
	}
	return out
}

func hotPathCall(p *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	// make(map[...]...) allocates per call.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			if t := p.Info.TypeOf(call.Args[0]); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, p.finding("hotpath", call,
						"make(map) in hot path — allocates a hash table per call; hoist to construction"))
				}
			}
		}
	}
	if fn := calleeFunc(p.Info, call); fn != nil && funcPkgPath(fn) == "fmt" {
		out = append(out, p.finding("hotpath", call,
			"fmt.%s in hot path — variadic any boxing allocates; use a typed error or move formatting off the kernel", fn.Name()))
	}
	// Conversion of a concrete value to an interface type: T(x) where T is
	// an interface — the boxing can heap-allocate on every call.
	if tv, ok := p.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if at := p.Info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) {
				out = append(out, p.finding("hotpath", call,
					"interface-converting allocation in hot path — boxing %s into %s may heap-allocate per call", at, tv.Type))
			}
		}
	}
	return out
}
