package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags result-feeding iteration over maps: a `range` over a map
// whose body appends to a slice, writes output, or accumulates floats, with
// no deterministic sort between the loop and the data's consumer. Map
// iteration order is randomized per run, so such loops change report rows,
// JSON layouts, and — because float addition is not associative — the low
// bits of accumulated counters between identical invocations. The
// collect-then-sort idiom (append keys, sort, iterate the slice) is
// recognized: a sort.*/slices.Sort* call after the loop in the same block
// clears the findings.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map feeding slices, output, or float accumulation without a subsequent deterministic sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Package, cfg *Config) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				sink := p.mapRangeSink(rs.Body)
				if sink == "" {
					continue
				}
				if sortFollows(list[i+1:]) {
					continue
				}
				out = append(out, p.finding("maporder", rs,
					"iteration over map %s in randomized order — sort the keys first or sort the result before it is consumed",
					sink))
			}
			return true
		})
	}
	return out
}

// mapRangeSink classifies what a map-range body feeds, returning "" when
// the body is order-insensitive (e.g. only writes keyed entries to another
// map or counts ints).
func (p *Package) mapRangeSink(body *ast.BlockStmt) string {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					sink = "appends to a slice"
					return false
				}
			}
			if isOutputCall(p.Info, n) {
				sink = "writes output"
				return false
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN && n.Tok != token.MUL_ASSIGN && n.Tok != token.QUO_ASSIGN {
				return true
			}
			for _, lhs := range n.Lhs {
				if isFloatType(p.Info.TypeOf(lhs)) {
					sink = "accumulates floats (addition is not associative)"
					return false
				}
			}
		}
		return true
	})
	return sink
}

// writerMethods are the output-sink method names on bytes.Buffer,
// strings.Builder, io.Writer and friends.
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	pkg, name := funcPkgPath(fn), fn.Name()
	if pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		return true
	}
	if !isPkgLevelFunc(fn) && writerMethods[name] {
		return true
	}
	return false
}

// sortFollows reports whether any statement in the list calls into sort or
// slices sorting — the tail of the collect-then-sort idiom.
func sortFollows(rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if id.Name == "sort" || (id.Name == "slices" && strings.Contains(sel.Sel.Name, "Sort")) {
						found = true
						return false
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
