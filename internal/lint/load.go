package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports are resolved by walking the
// source tree, everything else goes through the compiler's source importer.
// Test files are not loaded — test code may use the clock, compare floats,
// and iterate maps freely; the invariants guard production paths.
type Loader struct {
	fset    *token.FileSet
	std     types.Importer
	root    string            // module root directory
	module  string            // module path from go.mod
	dirs    map[string]string // module import path → directory
	pkgs    map[string]*Package
	loading map[string]bool // import-cycle guard
}

// NewLoader builds a loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		fset:    token.NewFileSet(),
		root:    root,
		module:  module,
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// scan indexes every directory in the module that contains Go files.
func (l *Loader) scan() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		bp, err := build.ImportDir(path, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return fmt.Errorf("lint: %s: %w", path, err)
		}
		if len(bp.GoFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		imp := l.module
		if rel != "." {
			imp = l.module + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// LoadAll type-checks every package in the module and returns them sorted
// by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadModulePkg(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Import implements types.Importer: module packages come from source in
// this loader (so their positions land in the shared FileSet), everything
// else from the standard source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// relPath converts a module import path to the module-relative form used by
// Config ("." for the root package).
func (l *Loader) relPath(imp string) string {
	if imp == l.module {
		return "."
	}
	return strings.TrimPrefix(imp, l.module+"/")
}

func (l *Loader) loadModulePkg(imp string) (*Package, error) {
	if pkg, ok := l.pkgs[imp]; ok {
		return pkg, nil
	}
	if l.loading[imp] {
		return nil, fmt.Errorf("lint: import cycle through %s", imp)
	}
	l.loading[imp] = true
	defer func() { l.loading[imp] = false }()

	dir := l.dirs[imp]
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", imp, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", imp, err)
		}
		files = append(files, f)
	}
	pkg, err := CheckPackage(l.relPath(imp), imp, l.fset, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[imp] = pkg
	return pkg, nil
}

// CheckPackage type-checks parsed files into an analysis-ready Package.
// relPath is the module-relative path used for Config scoping; imp is the
// full import path handed to go/types.
func CheckPackage(relPath, imp string, fset *token.FileSet, files []*ast.File, imports types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imports}
	tpkg, err := conf.Check(imp, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", imp, err)
	}
	return &Package{Path: relPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// AnalyzeModule loads the module at dir and runs the configured analyzers
// over every package — the in-process equivalent of `mosvet ./...`.
func AnalyzeModule(dir string, cfg *Config) ([]Finding, error) {
	res, err := AnalyzeModuleFull(dir, cfg)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// ModuleResult is a full module analysis: the findings, the exemption
// inventory the suppression-audit baseline pins, and the module root for
// relativizing file paths in machine-readable output.
type ModuleResult struct {
	Root         string
	Findings     []Finding
	Suppressions []Suppression
}

// AnalyzeModuleFull is AnalyzeModule plus the exemption inventory and
// module root — the entry point for mosvet's JSON/SARIF/baseline output.
func AnalyzeModuleFull(dir string, cfg *Config) (*ModuleResult, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	findings, sups := RunInventory(pkgs, cfg)
	return &ModuleResult{Root: l.root, Findings: findings, Suppressions: sups}, nil
}

// sharedSrc is the process-wide fset+importer AnalyzeSource runs on: one
// importer means each stdlib package is source-type-checked once per
// process, not once per synthetic test package. Guarded by sharedSrcMu —
// go/types drives the importer during Check, which is not concurrency-safe.
var (
	sharedSrcMu   sync.Mutex
	sharedSrcFset *token.FileSet
	sharedSrcImp  types.Importer
)

// AnalyzeSource type-checks a single synthetic package given as
// filename → source (the analyzer tests' txtar-style corpus) and runs the
// suite over it. relPath scopes the package for Config (e.g. "internal/sim"
// to exercise detclock). Imports resolve through the standard source
// importer, so the synthetic sources may use the stdlib freely.
func AnalyzeSource(relPath string, sources map[string]string, cfg *Config) ([]Finding, error) {
	return AnalyzeSourcePackages(map[string]map[string]string{relPath: sources}, cfg)
}

// AnalyzeSourcePackages type-checks a set of synthetic packages
// (module-relative path → filename → source) that may import each other
// via "synthetic/<relPath>" import paths, and runs the suite over all of
// them at once — the harness for the cross-package analyzers' tests.
// Filenames are prefixed with their package path so suppression
// directives never collide across packages.
func AnalyzeSourcePackages(pkgSources map[string]map[string]string, cfg *Config) ([]Finding, error) {
	sharedSrcMu.Lock()
	defer sharedSrcMu.Unlock()
	if sharedSrcFset == nil {
		sharedSrcFset = token.NewFileSet()
		sharedSrcImp = importer.ForCompiler(sharedSrcFset, "source", nil)
	}
	s := &srcLoader{
		fset:    sharedSrcFset,
		std:     sharedSrcImp,
		srcs:    pkgSources,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	rels := make([]string, 0, len(pkgSources))
	for rel := range pkgSources {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	var pkgs []*Package
	for _, rel := range rels {
		pkg, err := s.load(rel)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return Run(pkgs, cfg), nil
}

// srcLoader resolves "synthetic/<relPath>" imports between in-memory test
// packages; everything else falls through to the shared source importer.
type srcLoader struct {
	fset    *token.FileSet
	std     types.Importer
	srcs    map[string]map[string]string
	pkgs    map[string]*Package
	loading map[string]bool
}

const syntheticPrefix = "synthetic/"

func (s *srcLoader) Import(path string) (*types.Package, error) {
	rel, ok := strings.CutPrefix(path, syntheticPrefix)
	if !ok {
		return s.std.Import(path)
	}
	pkg, err := s.load(rel)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (s *srcLoader) load(rel string) (*Package, error) {
	if pkg, ok := s.pkgs[rel]; ok {
		return pkg, nil
	}
	if s.loading[rel] {
		return nil, fmt.Errorf("lint: import cycle through synthetic package %s", rel)
	}
	sources, ok := s.srcs[rel]
	if !ok {
		return nil, fmt.Errorf("lint: unknown synthetic package %s", rel)
	}
	s.loading[rel] = true
	defer func() { s.loading[rel] = false }()
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(s.fset, rel+"/"+name, sources[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := CheckPackage(rel, syntheticPrefix+rel, s.fset, files, s)
	if err != nil {
		return nil, err
	}
	s.pkgs[rel] = pkg
	return pkg, nil
}
