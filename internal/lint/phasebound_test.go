package lint

import (
	"fmt"
	"sort"
	"testing"
)

// analyzeModuleSrc runs the suite over a multi-package synthetic module and
// returns findings as "path:line:check" strings, sorted.
func analyzeModuleSrc(t *testing.T, pkgs map[string]map[string]string, cfg *Config) []string {
	t.Helper()
	fs, err := AnalyzeSourcePackages(pkgs, cfg)
	if err != nil {
		t.Fatalf("AnalyzeSourcePackages: %v", err)
	}
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Check))
	}
	sort.Strings(out)
	return out
}

// phaseOwnerSrc is a minimal stand-in for internal/trace: the owner package
// defines Phase and its validated constructor.
const phaseOwnerSrc = `package trace

type Phase struct {
	Name   string
	Lo, Hi int
}

// Make is the validated constructor: the owner package may build Phases.
func Make(name string, lo, hi int) Phase { return Phase{Name: name, Lo: lo, Hi: hi} }
`

func phaseCfg() *Config {
	cfg := DefaultConfig()
	cfg.Checks = []string{"phasebound"}
	return cfg
}

func TestPhaseBound(t *testing.T) {
	cases := []struct {
		name string
		src  string // body of a synthetic internal/sim package importing trace
		want []string
	}{
		{
			name: "raw literal outside the owner",
			src: `package sim
import "synthetic/internal/trace"
func bad() trace.Phase { return trace.Phase{Name: "x", Lo: 0, Hi: 1} }
`,
			want: []string{"internal/sim/use.go:3:phasebound"},
		},
		{
			name: "field mutation outside the owner",
			src: `package sim
import "synthetic/internal/trace"
func widen(ps []trace.Phase) { ps[0].Hi = 99 }
func bump(ps []trace.Phase) { ps[0].Lo++ }
`,
			want: []string{"internal/sim/use.go:3:phasebound", "internal/sim/use.go:4:phasebound"},
		},
		{
			name: "address-taking hands out a mutable alias",
			src: `package sim
import "synthetic/internal/trace"
func alias(ps []trace.Phase) *trace.Phase { return &ps[0] }
`,
			want: []string{"internal/sim/use.go:3:phasebound"},
		},
		{
			name: "reads and validated construction are free",
			src: `package sim
import "synthetic/internal/trace"
func span(p trace.Phase) int { return p.Hi - p.Lo }
func build() trace.Phase { return trace.Make("steady", 0, 8) }
func slice(xs []uint64, p trace.Phase) []uint64 { return xs[p.Lo:p.Hi] }
`,
			want: nil,
		},
		{
			name: "suppressed with a justified ignore",
			src: `package sim
import "synthetic/internal/trace"
func rebase(ps []trace.Phase) {
	ps[0].Hi = 7 //mosvet:ignore phasebound test fixture rebases a synthetic partition
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyzeModuleSrc(t, map[string]map[string]string{
				"internal/trace": {"phase.go": phaseOwnerSrc},
				"internal/sim":   {"use.go": tc.src},
			}, phaseCfg())
			wantFindings(t, got, tc.want...)
		})
	}
}

// TestPhaseBoundOwnerExempt: the owner package itself builds and mutates
// Phases freely — that is where the invariant is established.
func TestPhaseBoundOwnerExempt(t *testing.T) {
	got := analyzeModuleSrc(t, map[string]map[string]string{
		"internal/trace": {"phase.go": phaseOwnerSrc + `
func renumber(ps []Phase) {
	for i := range ps {
		ps[i].Lo = i
		ps[i].Hi = i + 1
	}
}
`},
	}, phaseCfg())
	wantFindings(t, got)
}
