package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != on floating-point operands. The repo's golden
// checks compare counters through math.Float64bits — an exact, total
// comparison — while a raw float == silently degrades to "close enough
// except when it isn't" (NaN != NaN, -0 == 0, and equality destroyed by a
// reassociated accumulation). Float64bits-mediated comparisons pass the
// check naturally (their operands are uint64); test files are not analyzed
// at all, so tolerance-style test assertions are unaffected. Deliberate
// sentinel checks (x == 0 guarding a divide) take a //mosvet:ignore floateq
// with the justification.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= on float operands outside math.Float64bits-mediated comparisons",
	Run:  runFloatEq,
}

func runFloatEq(p *Package, cfg *Config) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			// A comparison that is itself a constant is folded at compile
			// time — exact by definition.
			if tv, ok := p.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			if isFloatType(p.Info.TypeOf(be.X)) || isFloatType(p.Info.TypeOf(be.Y)) {
				out = append(out, p.finding("floateq", be,
					"%s on float operands — compare via math.Float64bits for bit-exactness or an explicit tolerance", be.Op))
			}
			return true
		})
	}
	return out
}
