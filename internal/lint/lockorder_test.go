package lint

import "testing"

func lockOrderCfg() *Config {
	cfg := DefaultConfig()
	cfg.Checks = []string{"lockorder"}
	return cfg
}

func TestLockOrder(t *testing.T) {
	cases := []struct {
		name string
		src  string // synthetic internal/cluster package
		want []string
	}{
		{
			name: "consistent ordering is clean",
			src: `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) x() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }
func (s *S) y() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }
`,
			want: nil,
		},
		{
			name: "inverted acquisition closes a cycle",
			src: `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) x() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }
func (s *S) y() { s.b.Lock(); s.a.Lock(); s.a.Unlock(); s.b.Unlock() }
`,
			want: []string{"5:lockorder"},
		},
		{
			name: "defer-released lock still orders later acquisitions",
			src: `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) x() { s.a.Lock(); defer s.a.Unlock(); s.b.Lock(); s.b.Unlock() }
func (s *S) y() { s.b.Lock(); defer s.b.Unlock(); s.a.Lock(); s.a.Unlock() }
`,
			want: []string{"5:lockorder"},
		},
		{
			name: "callee reacquiring a held lock self-deadlocks",
			src: `package p
import "sync"
type S struct{ mu sync.Mutex; n int }
func (s *S) bump() { s.mu.Lock(); s.n++; s.mu.Unlock() }
func (s *S) outer() { s.mu.Lock(); s.bump(); s.mu.Unlock() }
`,
			want: []string{"5:lockorder"},
		},
		{
			name: "transitive blocking under a held lock",
			src: `package p
import (
	"os"
	"sync"
)
type S struct{ mu sync.Mutex }
func (s *S) flush() { os.WriteFile("x", nil, 0o644) }
func (s *S) save() { s.mu.Lock(); s.flush(); s.mu.Unlock() }
`,
			want: []string{"8:lockorder"},
		},
		{
			name: "blocking after release is clean",
			src: `package p
import (
	"os"
	"sync"
)
type S struct{ mu sync.Mutex }
func (s *S) flush() { os.WriteFile("x", nil, 0o644) }
func (s *S) save() { s.mu.Lock(); s.mu.Unlock(); s.flush() }
`,
			want: nil,
		},
		{
			name: "package-level mutexes order too",
			src: `package p
import "sync"
var stateMu, fileMu sync.Mutex
func x() { stateMu.Lock(); fileMu.Lock(); fileMu.Unlock(); stateMu.Unlock() }
func y() { fileMu.Lock(); stateMu.Lock(); stateMu.Unlock(); fileMu.Unlock() }
`,
			// The cycle is reported at whichever edge the DFS closes —
			// here the stateMu→fileMu acquisition in x.
			want: []string{"4:lockorder"},
		},
		{
			name: "suppressed with a justified ignore",
			src: `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) x() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }
func (s *S) y() {
	s.b.Lock()
	s.a.Lock() //mosvet:ignore lockorder fixture: the b-then-a path never runs concurrently with x
	s.a.Unlock()
	s.b.Unlock()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyze(t, "internal/cluster", tc.src, lockOrderCfg())
			wantFindings(t, got, tc.want...)
		})
	}
}

// TestLockOrderScope: the analyzer only polices the configured serving and
// cluster packages — simulation code orders its own locks.
func TestLockOrderScope(t *testing.T) {
	src := `package p
import "sync"
type S struct{ a, b sync.Mutex }
func (s *S) x() { s.a.Lock(); s.b.Lock(); s.b.Unlock(); s.a.Unlock() }
func (s *S) y() { s.b.Lock(); s.a.Lock(); s.a.Unlock(); s.b.Unlock() }
`
	got := analyze(t, "internal/report", src, lockOrderCfg())
	wantFindings(t, got)
}

// TestLockOrderCrossPackage: acquisition edges span packages — a registry
// method calling into cluster code under its lock contributes edges to the
// same module-wide graph.
func TestLockOrderCrossPackage(t *testing.T) {
	got := analyzeModuleSrc(t, map[string]map[string]string{
		"internal/cluster": {"fleet.go": `package cluster
import "sync"
type Fleet struct{ Mu sync.Mutex }
func (f *Fleet) Tick() { f.Mu.Lock(); f.Mu.Unlock() }
`},
		"internal/serve/registry": {"reg.go": `package registry
import (
	"sync"
	"synthetic/internal/cluster"
)
type Reg struct {
	mu    sync.Mutex
	fleet *cluster.Fleet
}
func (r *Reg) a() { r.mu.Lock(); r.fleet.Mu.Lock(); r.fleet.Mu.Unlock(); r.mu.Unlock() }
func (r *Reg) b() { r.fleet.Mu.Lock(); r.mu.Lock(); r.mu.Unlock(); r.fleet.Mu.Unlock() }
`},
	}, lockOrderCfg())
	wantFindings(t, got, "internal/serve/registry/reg.go:10:lockorder")
}
