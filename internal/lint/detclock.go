package lint

import (
	"go/ast"
)

// DetClock forbids wall-clock reads and the global math/rand generator in
// the simulation core. Replay results must be pure functions of (trace,
// platform, layout, sampling plan): a time.Now in a counter path or an
// unseeded rand.Intn in a protocol makes "bit-identical across
// pooled/fused/sampled replay" unfalsifiable. Scheduler ETA and metrics
// code opts out with a //mosvet:timing directive on the function's doc
// comment; seeded generators (rand.New(rand.NewSource(seed))) are always
// allowed — only the process-global generator is banned.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc:  "forbid time.Now/time.Since and global math/rand in simulation packages (exempt: //mosvet:timing scopes)",
	Run:  runDetClock,
}

// randConstructors build seeded, caller-owned generators: deterministic by
// construction, so not part of the global-generator ban.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runDetClock(p *Package, cfg *Config) []Finding {
	if !pathIn(p.Path, cfg.DetClockPackages) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc, "timing") {
				continue // annotated wall-clock scope
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p.Info, call)
				if fn == nil {
					return true
				}
				switch funcPkgPath(fn) {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" {
						out = append(out, p.finding("detclock", call,
							"wall clock (time.%s) in simulation path — results must be pure functions of the trace; annotate the function //mosvet:timing if this is ETA/metrics code", fn.Name()))
					}
				case "math/rand", "math/rand/v2":
					if isPkgLevelFunc(fn) && !randConstructors[fn.Name()] {
						out = append(out, p.finding("detclock", call,
							"global math/rand generator (rand.%s) in simulation path — use a seeded rand.New(rand.NewSource(seed)) owned by the caller", fn.Name()))
					}
				}
				return true
			})
		}
	}
	return out
}
