package lint

import "testing"

func ckptCfg() *Config {
	cfg := DefaultConfig()
	cfg.Checks = []string{"ckptfields"}
	return cfg
}

func TestCkptFields(t *testing.T) {
	cases := []struct {
		name string
		src  string // synthetic internal/engine package
		want []string
	}{
		{
			// The ISSUE's acceptance fixture: a field added to the snapshot
			// type but never serialized must be caught.
			name: "unserialized snapshot field is caught",
			src: `package engine
type State struct{ A, B uint64 }
type Box struct{ a, b uint64 }
func (x *Box) Snapshot() State { return State{A: x.a} }
func (x *Box) Restore(s State) { x.a = s.A }
`,
			// Snapshot never writes State.B, never captures receiver b;
			// Restore never reads State.B.
			want: []string{"4:ckptfields", "4:ckptfields", "5:ckptfields"},
		},
		{
			name: "complete contract is clean",
			src: `package engine
type State struct{ A, B uint64 }
type Box struct{ a, b uint64 }
func (x *Box) Snapshot() State { return State{A: x.a, B: x.b} }
func (x *Box) Restore(s State) { x.a = s.A; x.b = s.B }
`,
			want: nil,
		},
		{
			name: "writes through transitive same-package helpers count",
			src: `package engine
type State struct{ A, B uint64 }
type Box struct{ a, b uint64 }
func (x *Box) Snapshot() State {
	var s State
	x.fillA(&s)
	s.B = x.b
	return s
}
func (x *Box) fillA(s *State) { s.A = x.a }
func (x *Box) Restore(s State) { x.a = s.A; x.b = s.B }
`,
			want: nil,
		},
		{
			name: "ckptexempt names the omitted fields",
			src: `package engine
type State struct{ A, B uint64 }
type Box struct{ a, cfg uint64 }
// Snapshot captures the replayed state.
//
//mosvet:ckptexempt B,cfg B is derived on restore and cfg is constructor-owned configuration
func (x *Box) Snapshot() State { return State{A: x.a} }
// Restore seeds the replayed state.
//
//mosvet:ckptexempt B B is recomputed from A on the next access
func (x *Box) Restore(s State) { x.a = s.A }
`,
			want: nil,
		},
		{
			name: "exemption covers only the named fields",
			src: `package engine
type State struct{ A, B, C uint64 }
type Box struct{ a, b, c uint64 }
// Snapshot captures the replayed state.
//
//mosvet:ckptexempt C C is a scratch register dead across checkpoints
func (x *Box) Snapshot() State { return State{A: x.a} }
func (x *Box) Restore(s State) { x.a = s.A; x.b = s.B; x.c = s.C }
`,
			// B still missing from Snapshot, and receiver b, c uncaptured
			// (the exemption names C, not the receiver's b; receiver c IS
			// covered by the same name).
			want: []string{"7:ckptfields", "7:ckptfields", "7:ckptfields"},
		},
		{
			name: "Snapshot without Restore breaks the contract",
			src: `package engine
type State struct{ A uint64 }
type Box struct{ a uint64 }
func (x *Box) Snapshot() State { return State{A: x.a} }
`,
			want: []string{"4:ckptfields"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyze(t, "internal/engine", tc.src, ckptCfg())
			wantFindings(t, got, tc.want...)
		})
	}
}

// TestCkptFieldsDelegation: a wrapper whose Snapshot/Restore only forward
// to another package's contract owns no fields and is not charged with the
// write/read obligations.
func TestCkptFieldsDelegation(t *testing.T) {
	got := analyzeModuleSrc(t, map[string]map[string]string{
		"internal/engine": {"box.go": `package engine
type State struct{ A, B uint64 }
type Box struct{ a, b uint64 }
func (x *Box) Snapshot() State { return State{A: x.a, B: x.b} }
func (x *Box) Restore(s State) { x.a = s.A; x.b = s.B }
`},
		"internal/harness": {"wrap.go": `package harness
import "synthetic/internal/engine"
type Wrap struct{ inner *engine.Box }
func (w *Wrap) Snapshot() engine.State { return w.inner.Snapshot() }
func (w *Wrap) Restore(s engine.State) { w.inner.Restore(s) }
`},
	}, ckptCfg())
	wantFindings(t, got)
}

// TestCkptFieldsCodecCoverage: the checkpoint codec package must carry
// every field of every struct reachable from a snapshot type — on both the
// encode and decode sides — once it touches the type at all.
func TestCkptFieldsCodecCoverage(t *testing.T) {
	engineSrc := `package engine
type Stats struct{ Hits, Misses uint64 }
type Box struct{ hits, misses uint64 }
func (x *Box) Snapshot() Stats { return Stats{Hits: x.hits, Misses: x.misses} }
func (x *Box) Restore(s Stats) { x.hits = s.Hits; x.misses = s.Misses }
`
	t.Run("partial carry on encode is caught", func(t *testing.T) {
		got := analyzeModuleSrc(t, map[string]map[string]string{
			"internal/engine": {"box.go": engineSrc},
			"internal/ckpt": {"codec.go": `package ckpt
import "synthetic/internal/engine"
func Encode(b []byte, s *engine.Stats) []byte { return append(b, byte(s.Hits)) }
func Decode(b []byte) *engine.Stats {
	return &engine.Stats{Hits: uint64(b[0]), Misses: uint64(b[1])}
}
`},
		}, ckptCfg())
		wantFindings(t, got, "internal/ckpt/codec.go:3:ckptfields")
	})
	t.Run("full carry is clean", func(t *testing.T) {
		got := analyzeModuleSrc(t, map[string]map[string]string{
			"internal/engine": {"box.go": engineSrc},
			"internal/ckpt": {"codec.go": `package ckpt
import "synthetic/internal/engine"
func Encode(b []byte, s *engine.Stats) []byte {
	return append(append(b, byte(s.Hits)), byte(s.Misses))
}
func Decode(b []byte) *engine.Stats {
	return &engine.Stats{Hits: uint64(b[0]), Misses: uint64(b[1])}
}
`},
		}, ckptCfg())
		wantFindings(t, got)
	})
	t.Run("codec-side ckptexempt", func(t *testing.T) {
		got := analyzeModuleSrc(t, map[string]map[string]string{
			"internal/engine": {"box.go": engineSrc},
			"internal/ckpt": {"codec.go": `package ckpt
import "synthetic/internal/engine"
// Encode serializes the stats.
//
//mosvet:ckptexempt Misses Misses is recomputed as Lookups-Hits by the consumer
func Encode(b []byte, s *engine.Stats) []byte { return append(b, byte(s.Hits)) }
// Decode deserializes the stats.
//
//mosvet:ckptexempt Misses Misses is recomputed as Lookups-Hits by the consumer
func Decode(b []byte) *engine.Stats { return &engine.Stats{Hits: uint64(b[0])} }
`},
		}, ckptCfg())
		wantFindings(t, got)
	})
}
