package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the module-wide mutex acquisition graph over the
// coordinator and serving packages and rejects the two interprocedural
// hazards lockio's per-function scan cannot see: acquisition cycles
// (goroutine A takes mu1→mu2 while B takes mu2→mu1 — a deadlock that only
// fires under contention) and calls made under a lock into functions that
// transitively block (the registry head-of-line pattern: the critical
// section looks clean, the helper it calls does the file I/O).
//
// Lock identity is structural: a mutex is named by the struct field or
// package-level variable it lives in (cluster.Coordinator.mu,
// registry.Registry.mu). Locally-scoped mutexes cannot participate in
// cross-function orderings and are tracked only for held-ness. Calls
// through function values and interfaces are unresolvable and skipped —
// the coordinator's notify-after-unlock callbacks stay out of the graph by
// construction, which is exactly the discipline they exist to encode.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "reject mutex acquisition cycles and transitively-blocking calls under locks across the coordinator and serving packages",
	RunModule: runLockOrder,
}

func runLockOrder(pkgs []*Package, cfg *Config) []Finding {
	lo := &lockOrder{
		cfg:   cfg,
		fns:   make(map[*types.Func]*fnDecl),
		sums:  make(map[*types.Func]*fnSummary),
		edges: make(map[string]map[string]lockSite),
	}
	for _, p := range pkgs {
		if !pathIn(p.Path, cfg.LockOrderPackages) {
			continue
		}
		lo.scoped = append(lo.scoped, p)
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					lo.fns[fn] = &fnDecl{p: p, decl: fd}
				}
			}
		}
	}
	for _, p := range lo.scoped {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.FuncDecl:
					body = n.Body
				case *ast.FuncLit:
					body = n.Body
				default:
					return true
				}
				if body != nil {
					s := &orderScan{lo: lo, p: p}
					s.stmts(body.List, nil)
				}
				return true // descend: FuncLits inside are their own scopes
			})
		}
	}
	lo.findCycles()
	return lo.findings
}

type fnDecl struct {
	p    *Package
	decl *ast.FuncDecl
}

// fnSummary is the transitive fact set for one function: every lock key it
// may acquire and whether any path through it performs a blocking
// operation (with the leaf operation's description).
type fnSummary struct {
	acq   map[string]bool
	block string // "" if no path blocks
}

type lockSite struct {
	p   *Package
	pos token.Pos
}

type lockOrder struct {
	cfg      *Config
	scoped   []*Package
	fns      map[*types.Func]*fnDecl
	sums     map[*types.Func]*fnSummary
	edges    map[string]map[string]lockSite // held key → acquired key → first site
	findings []Finding
}

// summary computes (memoized) the transitive acquisition set and blocking
// fact for a scoped function. Recursive call cycles see the partially
// computed summary — an under-approximation on the cycle itself, which is
// fine: a lock acquired on every path round a recursion still appears via
// the first pass through the body.
func (lo *lockOrder) summary(fn *types.Func) *fnSummary {
	if s, ok := lo.sums[fn]; ok {
		return s
	}
	s := &fnSummary{acq: make(map[string]bool)}
	lo.sums[fn] = s
	fd, ok := lo.fns[fn]
	if !ok {
		return s
	}
	var callees []*types.Func
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Literal bodies run whenever the value is invoked — often
			// deliberately after an unlock. Charging them to the enclosing
			// function would poison every callback-based release pattern.
			return false
		case *ast.CallExpr:
			if mutexCallKind(fd.p.Info, n) == lockAcquire {
				if k := lockKeyOf(fd.p, n); k != "" {
					s.acq[k] = true
				}
				return true
			}
			if desc := blockingCall(fd.p.Info, n); desc != "" && s.block == "" {
				s.block = desc
			}
			if callee := calleeFunc(fd.p.Info, n); callee != nil {
				if _, scoped := lo.fns[callee]; scoped && callee != fn {
					callees = append(callees, callee)
				}
			}
		case *ast.SendStmt:
			if s.block == "" {
				s.block = "a channel send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && s.block == "" {
				s.block = "a channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) && s.block == "" {
				s.block = "a blocking select"
			}
		case *ast.RangeStmt:
			if t := fd.p.Info.TypeOf(n.X); t != nil && s.block == "" {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.block = "a range over a channel"
				}
			}
		}
		return true
	})
	for _, c := range callees {
		cs := lo.summary(c)
		for k := range cs.acq {
			s.acq[k] = true
		}
		if s.block == "" && cs.block != "" {
			s.block = cs.block
		}
	}
	return s
}

func (lo *lockOrder) edge(from, to string, p *Package, pos token.Pos) {
	m := lo.edges[from]
	if m == nil {
		m = make(map[string]lockSite)
		lo.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = lockSite{p: p, pos: pos}
	}
}

// findCycles reports every edge that closes a cycle in the acquisition
// graph (a 2-cycle is an inconsistent pairwise ordering; longer cycles are
// circular waits). DFS over sorted keys keeps the report deterministic.
func (lo *lockOrder) findCycles() {
	keys := make([]string, 0, len(lo.edges))
	for k := range lo.edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var path []string
	var visit func(u string)
	visit = func(u string) {
		color[u] = gray
		path = append(path, u)
		tos := make([]string, 0, len(lo.edges[u]))
		for to := range lo.edges[u] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch color[to] {
			case white:
				visit(to)
			case gray:
				site := lo.edges[u][to]
				i := 0
				for ; i < len(path); i++ {
					if path[i] == to {
						break
					}
				}
				cycle := append(append([]string{}, path[i:]...), to)
				lo.findings = append(lo.findings, Finding{
					Check: "lockorder",
					Pos:   site.p.position(site.pos),
					Message: fmt.Sprintf("lock ordering cycle: %s — acquiring %s here while %s is held closes the cycle",
						strings.Join(cycle, " → "), to, u),
				})
			}
		}
		path = path[:len(path)-1]
		color[u] = black
	}
	for _, k := range keys {
		if color[k] == white {
			visit(k)
		}
	}
}

// orderScan walks one function linearly, tracking the ordered list of held
// locks, mirroring lockio's scan. Branch bodies inherit a copy of the held
// list; acquisitions inside a branch do not persist past it, and an unlock
// inside a branch does not clear the state after it (conservative).
type orderScan struct {
	lo   *lockOrder
	p    *Package
	held []string // lock keys in acquisition order; "" = unidentified local
}

func (s *orderScan) stmts(list []ast.Stmt, held []string) []string {
	for _, stmt := range list {
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				switch mutexCallKind(s.p.Info, call) {
				case lockAcquire:
					held = s.acquire(call, held)
					continue
				case lockRelease:
					held = release(held, lockKeyOf(s.p, call))
					continue
				}
			}
		case *ast.DeferStmt:
			if mutexCallKind(s.p.Info, st.Call) == lockRelease {
				continue // held to end of function; later statements stay checked
			}
		case *ast.BlockStmt:
			held = s.stmts(st.List, held)
			continue
		case *ast.IfStmt:
			s.calls(st.Cond, held)
			s.stmts(st.Body.List, cloneHeld(held))
			if st.Else != nil {
				s.stmts([]ast.Stmt{st.Else}, cloneHeld(held))
			}
			continue
		case *ast.ForStmt:
			if st.Cond != nil {
				s.calls(st.Cond, held)
			}
			s.stmts(st.Body.List, cloneHeld(held))
			continue
		case *ast.RangeStmt:
			s.calls(st.X, held)
			s.stmts(st.Body.List, cloneHeld(held))
			continue
		case *ast.SwitchStmt:
			s.caseBodies(st.Body, held)
			continue
		case *ast.TypeSwitchStmt:
			s.caseBodies(st.Body, held)
			continue
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					s.stmts(cc.Body, cloneHeld(held))
				}
			}
			continue
		}
		s.calls(stmt, held)
	}
	return held
}

func (s *orderScan) caseBodies(body *ast.BlockStmt, held []string) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			s.stmts(cc.Body, cloneHeld(held))
		}
	}
}

// acquire records ordering edges from every held lock to the newly
// acquired one and flags recursive acquisition of the same key.
func (s *orderScan) acquire(call *ast.CallExpr, held []string) []string {
	k := lockKeyOf(s.p, call)
	for _, h := range held {
		if h == "" || k == "" {
			continue
		}
		if h == k {
			s.lo.findings = append(s.lo.findings, s.p.finding("lockorder", call,
				"recursive acquisition of %s — it is already held on this path", k))
			continue
		}
		s.lo.edge(h, k, s.p, call.Pos())
	}
	return append(cloneHeld(held), k)
}

// calls inspects a node (skipping function literals) for calls into scoped
// module functions and charges their transitive summaries against the held
// locks: transitive acquisitions become ordering edges, transitive
// blocking becomes a finding at the call site.
func (s *orderScan) calls(n ast.Node, held []string) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(s.p.Info, call)
		if callee == nil {
			return true
		}
		if _, scoped := s.lo.fns[callee]; !scoped {
			return true
		}
		sum := s.lo.summary(callee)
		acq := make([]string, 0, len(sum.acq))
		for k := range sum.acq {
			acq = append(acq, k)
		}
		sort.Strings(acq)
		for _, k := range acq {
			for _, h := range held {
				if h == "" {
					continue
				}
				if h == k {
					s.lo.findings = append(s.lo.findings, s.p.finding("lockorder", call,
						"call to %s may acquire %s, which is already held — self-deadlock on a non-reentrant mutex", callee.Name(), k))
					continue
				}
				s.lo.edge(h, k, s.p, call.Pos())
			}
		}
		if sum.block != "" {
			s.lo.findings = append(s.lo.findings, s.p.finding("lockorder", call,
				"call to %s while %s is held — it transitively performs %s; restructure so the lock is released first", callee.Name(), heldName(held), sum.block))
		}
		return true
	})
}

func heldName(held []string) string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] != "" {
			return held[i]
		}
	}
	return "a locally-scoped mutex"
}

func cloneHeld(held []string) []string {
	return append([]string(nil), held...)
}

// release pops the most recent matching key (or the most recent entry when
// the key is unidentified).
func release(held []string, k string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == k {
			return append(cloneHeld(held[:i]), held[i+1:]...)
		}
	}
	if len(held) > 0 && k == "" {
		return cloneHeld(held[:len(held)-1])
	}
	return held
}

// lockKeyOf names the mutex a Lock/Unlock call operates on: the struct
// field ("pkg.Type.field") or package-level variable ("pkg.var") holding
// it. Locals, parameters, and map/interface-typed receivers return "".
func lockKeyOf(p *Package, call *ast.CallExpr) string {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := ast.Unparen(fun.X)
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		sel := p.Info.Selections[r]
		if sel == nil || sel.Kind() != types.FieldVal {
			return ""
		}
		t := sel.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Name(), named.Obj().Name(), r.Sel.Name)
	case *ast.Ident:
		if v, ok := p.Info.Uses[r].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return fmt.Sprintf("%s.%s", v.Pkg().Name(), v.Name())
		}
	case *ast.IndexExpr:
		// Mutexes in slices/maps share one key per container element type —
		// too ambiguous to order; track held-ness only.
		return ""
	}
	return ""
}
