package lint

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleResult() *ModuleResult {
	return &ModuleResult{
		Root: "/mod",
		Findings: []Finding{{
			Check:   "codecsym",
			Message: "encode/decode skew",
			Pos:     token.Position{Filename: "/mod/internal/cluster/wire.go", Line: 42, Column: 7},
		}},
		Suppressions: []Suppression{
			{File: "/mod/internal/stats/qr.go", Line: 10, Directive: "ignore", Checks: []string{"floateq"}, Reason: "singularity sentinel"},
			{File: "/mod/internal/tlb/state.go", Line: 20, Directive: "ckptexempt", Checks: []string{"cfg"}, Reason: "constructor-owned"},
		},
	}
}

func TestBuildReportRelativizesPaths(t *testing.T) {
	r := BuildReport(sampleResult())
	if got := r.Findings[0].File; got != "internal/cluster/wire.go" {
		t.Errorf("finding file = %q, want module-relative", got)
	}
	if got := r.Suppressions[0].File; got != "internal/stats/qr.go" {
		t.Errorf("suppression file = %q, want module-relative", got)
	}
}

func TestSARIFDocument(t *testing.T) {
	data, err := BuildReport(sampleResult()).SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	s := string(data)
	for _, want := range []string{`"2.1.0"`, `"codecsym"`, `"internal/cluster/wire.go"`, `"%SRCROOT%"`} {
		if !strings.Contains(s, want) {
			t.Errorf("SARIF missing %s", want)
		}
	}
}

func TestBaselineDiff(t *testing.T) {
	res := sampleResult()
	b := NewBaseline(res)

	t.Run("fresh baseline is clean", func(t *testing.T) {
		if drift := b.Diff(BuildReport(res).Suppressions); len(drift) != 0 {
			t.Errorf("fresh baseline drifted: %v", drift)
		}
	})
	t.Run("line moves are not drift", func(t *testing.T) {
		moved := BuildReport(res).Suppressions
		moved[0].Line += 40 // unrelated edit shifted the file
		if drift := b.Diff(moved); len(drift) != 0 {
			t.Errorf("line-only move reported as drift: %v", drift)
		}
	})
	t.Run("new exemption is drift", func(t *testing.T) {
		extra := append(BuildReport(res).Suppressions, Suppression{
			File: "internal/cpu/segment.go", Directive: "ignore", Checks: []string{"lockio"}, Reason: "new",
		})
		drift := b.Diff(extra)
		if len(drift) != 1 || !strings.Contains(drift[0], "not in baseline") {
			t.Errorf("added exemption not flagged: %v", drift)
		}
	})
	t.Run("removed exemption is drift", func(t *testing.T) {
		drift := b.Diff(BuildReport(res).Suppressions[:1])
		if len(drift) != 1 || !strings.Contains(drift[0], "no longer present") {
			t.Errorf("removed exemption not flagged: %v", drift)
		}
	})
	t.Run("reworded reason is drift", func(t *testing.T) {
		reworded := BuildReport(res).Suppressions
		reworded[1].Reason = "different justification"
		drift := b.Diff(reworded)
		if len(drift) != 2 { // one side missing, one side extra
			t.Errorf("reworded reason drift = %v, want both directions", drift)
		}
	})
}

func TestBaselineFileRoundTrip(t *testing.T) {
	res := sampleResult()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := NewBaseline(res).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	drift, err := VerifyBaseline(path, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(drift) != 0 {
		t.Errorf("round-tripped baseline drifted: %v", drift)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "-write-baseline") {
		t.Error("baseline note does not say how to regenerate")
	}
}

// TestDirectiveGrammar: the new doc directives parse, inventory, and
// reject missing reasons like the line-level ignore does.
func TestDirectiveGrammar(t *testing.T) {
	t.Run("ckptexempt without a reason is malformed", func(t *testing.T) {
		src := `package engine
type State struct{ A, B uint64 }
type Box struct{ a uint64 }
// Snapshot captures state.
//
//mosvet:ckptexempt B
func (x *Box) Snapshot() State { return State{A: x.a} }
func (x *Box) Restore(s State) { x.a = s.A }
`
		got := analyze(t, "internal/engine", src, ckptCfg())
		// The malformed directive still exempts nothing, so the missing-B
		// findings fire alongside the mosvet grammar finding.
		found := false
		for _, g := range got {
			if strings.HasSuffix(g, ":mosvet") {
				found = true
			}
		}
		if !found {
			t.Errorf("reasonless ckptexempt not flagged: %v", got)
		}
	})
	t.Run("unknown directive kind is flagged", func(t *testing.T) {
		src := `package p
//mosvet:nosuchthing whatever
func f() {}
`
		got := analyze(t, "internal/sim", src, DefaultConfig())
		wantFindings(t, got, "2:mosvet")
	})
	t.Run("codecskip needs no field list", func(t *testing.T) {
		src := `package p
// seal appends the trailer.
//
//mosvet:codecskip asymmetric by design
func seal(b []byte) []byte { return b }
`
		got := analyze(t, "internal/sim", src, DefaultConfig())
		wantFindings(t, got)
	})
}

func TestSuppressionKeyIgnoresLine(t *testing.T) {
	a := Suppression{File: "f.go", Line: 1, Directive: "ignore", Checks: []string{"floateq"}, Reason: "r"}
	b := Suppression{File: "f.go", Line: 99, Directive: "ignore", Checks: []string{"floateq"}, Reason: "r"}
	if suppressionKey(a) != suppressionKey(b) {
		t.Error("baseline identity must not include the line number")
	}
	c := b
	c.Reason = "other"
	if suppressionKey(a) == suppressionKey(c) {
		t.Error("baseline identity must include the reason")
	}
}
