package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CkptFields enforces the checkpoint contract end to end: every field of a
// type returned by an exported Snapshot method must be written by the
// Snapshot closure (the method plus its transitive same-package callees),
// read back by the paired Restore closure, and — for every struct
// reachable from a snapshot type — carried by the checkpoint codec's
// encode and decode paths. "Added a counter to cache.Hierarchy, forgot
// the checkpoint" becomes a build failure instead of a golden-test miss
// three layers away.
//
// Deliberately-omitted fields are declared per function with
//
//	//mosvet:ckptexempt <Field>[,<Field>...] <reason>
//
// in the doc comment of any function in the relevant closure. Unlike a
// line-level ignore, an exemption names the fields it covers: adding a new
// field later still fails the build. The same directive exempts receiver
// fields from the capture check and codec-side omissions.
//
// When the snapshot type lives in the same package as the receiver (the
// leaf state owners), the receiver's own fields must each be referenced by
// the Snapshot closure — configuration fields that are rebuilt by the
// constructor are exempted by name. Composite engines whose snapshot type
// is owned elsewhere (ckpt.MachineState) are covered by the field-write
// rule alone.
var CkptFields = &Analyzer{
	Name:      "ckptfields",
	Doc:       "require Snapshot to write, Restore to read, and the checkpoint codec to carry every field of every snapshot type",
	RunModule: runCkptFields,
}

func runCkptFields(pkgs []*Package, cfg *Config) []Finding {
	var out []Finding
	moduleScope := make(map[*types.Package]bool, len(pkgs))
	for _, p := range pkgs {
		moduleScope[p.Types] = true
	}
	stateSeen := make(map[*types.Named]bool)
	var stateTypes []*types.Named
	for _, p := range pkgs {
		for _, c := range ckptContracts(p) {
			out = append(out, checkContract(p, c)...)
			collectStateTypes(c.state, moduleScope, stateSeen, &stateTypes)
		}
	}
	sort.Slice(stateTypes, func(i, j int) bool {
		a, b := stateTypes[i].Obj(), stateTypes[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	for _, p := range pkgs {
		if !pathSuffixIn(p.Path, cfg.CkptCodecPackages) {
			continue
		}
		out = append(out, checkCodecSide(p, "encode", stateTypes)...)
		out = append(out, checkCodecSide(p, "decode", stateTypes)...)
	}
	return out
}

// ckptContract is one Snapshot/Restore pair discovered in a package.
type ckptContract struct {
	recv  *types.Named // receiver type
	state *types.Named // snapshot struct type
	snap  *ast.FuncDecl
	rest  *ast.FuncDecl // nil when missing
}

func ckptContracts(p *Package) []ckptContract {
	type recvFns struct{ snap, rest *ast.FuncDecl }
	byRecv := make(map[*types.Named]*recvFns)
	var order []*types.Named
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Snapshot" && fd.Name.Name != "Restore" {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			recv := namedOf(sig.Recv().Type())
			if recv == nil {
				continue
			}
			e := byRecv[recv]
			if e == nil {
				e = &recvFns{}
				byRecv[recv] = e
				order = append(order, recv)
			}
			if fd.Name.Name == "Snapshot" {
				e.snap = fd
			} else {
				e.rest = fd
			}
		}
	}
	var out []ckptContract
	for _, recv := range order {
		e := byRecv[recv]
		if e.snap == nil {
			continue // Restore alone is not a contract entry point
		}
		fn := p.Info.Defs[e.snap.Name].(*types.Func)
		sig := fn.Type().(*types.Signature)
		if sig.Results().Len() == 0 {
			continue
		}
		state := namedOf(sig.Results().At(0).Type())
		if state == nil {
			continue
		}
		if _, ok := state.Underlying().(*types.Struct); !ok {
			continue
		}
		out = append(out, ckptContract{recv: recv, state: state, snap: e.snap, rest: e.rest})
	}
	return out
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func checkContract(p *Package, c ckptContract) []Finding {
	var out []Finding
	sFields, sByName := structFields(c.state)
	snapClosure := sameFnClosure(p, c.snap)

	if c.rest == nil {
		return []Finding{p.finding("ckptfields", c.snap.Name,
			"%s has Snapshot but no Restore — the checkpoint contract requires both", c.recv.Obj().Name())}
	}
	restClosure := sameFnClosure(p, c.rest)

	written := fieldWrites(p, snapClosure, c.state, sByName)
	if len(written) > 0 { // zero writes = a delegating wrapper, not a state owner
		exempt := exemptFields(snapClosure)
		for _, f := range sFields {
			if !written[f] && !exempt[f.Name()] {
				out = append(out, p.finding("ckptfields", c.snap.Name,
					"%s.Snapshot never writes %s.%s — restored state would see a zero value; write it or declare //mosvet:ckptexempt %s <reason>",
					c.recv.Obj().Name(), c.state.Obj().Name(), f.Name(), f.Name()))
			}
		}

		// Receiver capture: leaf state owners (snapshot type defined beside
		// the receiver) must reference every receiver field or exempt it.
		if c.state.Obj().Pkg() == c.recv.Obj().Pkg() {
			rFields, _ := structFields(c.recv)
			mentioned := fieldMentions(p, snapClosure, fieldSet(rFields))
			for _, f := range rFields {
				if !mentioned[f] && !exempt[f.Name()] {
					out = append(out, p.finding("ckptfields", c.snap.Name,
						"%s.Snapshot captures no state from receiver field %s.%s — snapshot it or declare //mosvet:ckptexempt %s <reason>",
						c.recv.Obj().Name(), c.recv.Obj().Name(), f.Name(), f.Name()))
				}
			}
		}
	}

	read := fieldMentions(p, restClosure, fieldSet(sFields))
	if len(read) > 0 {
		exempt := exemptFields(restClosure)
		for _, f := range sFields {
			if !read[f] && !exempt[f.Name()] {
				out = append(out, p.finding("ckptfields", c.rest.Name,
					"%s.Restore never reads %s.%s — the snapshot field is silently dropped; read it or declare //mosvet:ckptexempt %s <reason>",
					c.recv.Obj().Name(), c.state.Obj().Name(), f.Name(), f.Name()))
			}
		}
	}
	return out
}

// checkCodecSide requires the package's encode (or decode) closure to
// carry every field of every state type it touches at all.
func checkCodecSide(p *Package, side string, stateTypes []*types.Named) []Finding {
	var roots []*ast.FuncDecl
	rootName, rootPrefix := "Encode", "encode"
	if side == "decode" {
		rootName, rootPrefix = "Decode", "decode"
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == rootName || strings.HasPrefix(fd.Name.Name, rootPrefix) {
				roots = append(roots, fd)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	seen := make(map[*ast.FuncDecl]bool)
	var closure []*ast.FuncDecl
	for _, r := range roots {
		for _, d := range sameFnClosure(p, r) {
			if !seen[d] {
				seen[d] = true
				closure = append(closure, d)
			}
		}
	}
	exempt := exemptFields(closure)
	var out []Finding
	for _, T := range stateTypes {
		tFields, _ := structFields(T)
		mentioned := fieldMentions(p, closure, fieldSet(tFields))
		if len(mentioned) == 0 {
			continue // this codec does not carry T at all
		}
		for _, f := range tFields {
			if !mentioned[f] && !exempt[f.Name()] {
				out = append(out, p.finding("ckptfields", roots[0].Name,
					"checkpoint codec %s path carries %s.%s partially: field %s is never referenced — extend the codec in lockstep or declare //mosvet:ckptexempt %s <reason>",
					side, T.Obj().Pkg().Name(), T.Obj().Name(), f.Name(), f.Name()))
			}
		}
	}
	return out
}

// collectStateTypes walks the struct graph reachable from a snapshot type
// through fields, pointers, slices, and arrays, keeping module-defined
// named structs.
func collectStateTypes(n *types.Named, scope map[*types.Package]bool, seen map[*types.Named]bool, out *[]*types.Named) {
	if n == nil || seen[n] || n.Obj().Pkg() == nil || !scope[n.Obj().Pkg()] {
		return
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	seen[n] = true
	*out = append(*out, n)
	for i := 0; i < st.NumFields(); i++ {
		t := st.Field(i).Type()
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			case *types.Array:
				t = u.Elem()
				continue
			}
			break
		}
		collectStateTypes(namedOf(t), scope, seen, out)
	}
}

// sameFnClosure returns root plus its transitive same-package callees in
// discovery order. Function literals inside the bodies are traversed (they
// run as part of the operation).
func sameFnClosure(p *Package, root *ast.FuncDecl) []*ast.FuncDecl {
	seen := map[*ast.FuncDecl]bool{root: true}
	out := []*ast.FuncDecl{root}
	for i := 0; i < len(out); i++ {
		ast.Inspect(out[i].Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(p.Info, call); fn != nil {
				if decl := p.funcDecl(fn); decl != nil && decl.Body != nil && !seen[decl] {
					seen[decl] = true
					out = append(out, decl)
				}
			}
			return true
		})
	}
	return out
}

// exemptFields unions the //mosvet:ckptexempt field lists declared on the
// closure's functions. (Reason enforcement happens in the directive pass.)
func exemptFields(closure []*ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	for _, d := range closure {
		args := directiveArgs(d.Doc, "ckptexempt")
		if len(args) == 0 {
			continue
		}
		for _, f := range strings.Split(args[0], ",") {
			out[f] = true
		}
	}
	return out
}

func structFields(n *types.Named) ([]*types.Var, map[string]*types.Var) {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	var fields []*types.Var
	byName := make(map[string]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fields = append(fields, f)
		byName[f.Name()] = f
	}
	return fields, byName
}

func fieldSet(fields []*types.Var) map[*types.Var]bool {
	s := make(map[*types.Var]bool, len(fields))
	for _, f := range fields {
		s[f] = true
	}
	return s
}

// fieldWrites collects the fields of state written anywhere in the
// closure: keyed composite-literal entries, positional literals (which
// populate every field), and assignment targets (through index and deref
// chains).
func fieldWrites(p *Package, closure []*ast.FuncDecl, state *types.Named, byName map[string]*types.Var) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		if sel, ok := assignTargetField(e); ok {
			if s := p.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				if v, ok := s.Obj().(*types.Var); ok {
					if f := byName[v.Name()]; f == v {
						out[v] = true
					}
				}
			}
		}
	}
	for _, d := range closure {
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if namedOf(p.Info.TypeOf(n)) != state {
					return true
				}
				if len(n.Elts) == 0 {
					return true
				}
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
					for _, f := range byName {
						out[f] = true
					}
					return true
				}
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if f := byName[id.Name]; f != nil {
								out[f] = true
							}
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			}
			return true
		})
	}
	return out
}

// assignTargetField unwraps an assignment target down to the field
// selector it writes through (st.F, st.F[i], (*st).F, …).
func assignTargetField(e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x, true
		default:
			return nil, false
		}
	}
}

// fieldMentions collects every field in the set referenced by any
// selector expression or keyed composite-literal entry in the closure.
func fieldMentions(p *Package, closure []*ast.FuncDecl, fields map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, d := range closure {
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if s := p.Info.Selections[n]; s != nil && s.Kind() == types.FieldVal {
					if v, ok := s.Obj().(*types.Var); ok && fields[v] {
						out[v] = true
					}
				}
			case *ast.KeyValueExpr:
				// Struct literal keys resolve to the field object in Uses
				// (&MachineState{HasClock: ...} mentions HasClock).
				if id, ok := n.Key.(*ast.Ident); ok {
					if v, ok := p.Info.Uses[id].(*types.Var); ok && fields[v] {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}
