package lint

import "testing"

func codecCfg() *Config {
	cfg := DefaultConfig()
	cfg.Checks = []string{"codecsym"}
	return cfg
}

func TestCodecSym(t *testing.T) {
	cases := []struct {
		name string
		src  string // synthetic internal/wire package
		want []string
	}{
		{
			name: "matched write/read pair is clean",
			src: `package wire
import "encoding/binary"
func writeFrame(b []byte, v uint32, w uint16) []byte {
	b = binary.BigEndian.AppendUint32(b, v)
	b = binary.BigEndian.AppendUint16(b, w)
	return b
}
func readFrame(b []byte) (uint32, uint16) {
	return binary.BigEndian.Uint32(b), binary.BigEndian.Uint16(b[4:])
}
`,
			want: nil,
		},
		{
			name: "width skew is caught at the decoder",
			src: `package wire
import "encoding/binary"
func writeFrame(b []byte, v uint32, w uint16) []byte {
	b = binary.BigEndian.AppendUint32(b, v)
	b = binary.BigEndian.AppendUint16(b, w)
	return b
}
func readFrame(b []byte) (uint32, uint64) {
	return binary.BigEndian.Uint32(b), binary.BigEndian.Uint64(b[4:])
}
`,
			want: []string{"8:codecsym"},
		},
		{
			name: "decoder that stops early is caught",
			src: `package wire
import "encoding/binary"
func writeHdr(b []byte, a, c uint32, w uint16) []byte {
	b = binary.BigEndian.AppendUint32(b, a)
	b = binary.BigEndian.AppendUint32(b, c)
	b = binary.BigEndian.AppendUint16(b, w)
	return b
}
func readHdr(b []byte) (uint32, uint32) {
	return binary.BigEndian.Uint32(b), binary.BigEndian.Uint32(b[4:])
}
`,
			want: []string{"9:codecsym"},
		},
		{
			name: "length-prefixed loops pair as repeat groups",
			src: `package wire
import "encoding/binary"
func writeVals(b []byte, vs []uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}
func readVals(b []byte) []uint64 {
	n := binary.BigEndian.Uint32(b)
	out := make([]uint64, n)
	off := 4
	for i := 0; i < int(n); i++ {
		out[i] = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	return out
}
`,
			want: nil,
		},
		{
			name: "varint asymmetry is caught",
			src: `package wire
import "encoding/binary"
func writeCount(b []byte, n uint64) []byte {
	return binary.AppendUvarint(b, n)
}
func readCount(b []byte) uint64 {
	return binary.BigEndian.Uint64(b)
}
`,
			want: []string{"6:codecsym"},
		},
		{
			name: "helpers inline into the stream",
			src: `package wire
import "encoding/binary"
func putU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func writeSpan(b []byte, lo, hi uint32) []byte {
	b = putU32(b, lo)
	return putU32(b, hi)
}
func readSpan(b []byte) (uint32, uint32) {
	return binary.BigEndian.Uint32(b), binary.BigEndian.Uint32(b[4:])
}
`,
			want: nil,
		},
		{
			name: "codecskip opts an asymmetric envelope helper out",
			src: `package wire
import "encoding/binary"
// writeSeal appends the checksum trailer.
//
//mosvet:codecskip the trailer is written last but verified first by the reader
func writeSeal(b []byte) []byte { return binary.BigEndian.AppendUint64(b, 7) }
// readSeal verifies the trailer before the body is parsed.
//
//mosvet:codecskip reads the trailer from the end of the buffer first
func readSeal(b []byte) uint64 { return binary.BigEndian.Uint64(b[len(b)-8:]) }
`,
			want: nil,
		},
		{
			name: "codecpair pairs unconventional names",
			src: `package wire
import "encoding/binary"
// marshalSpan writes a [lo, hi) span.
//
//mosvet:codecpair parseSpan
func marshalSpan(b []byte, lo, hi uint32) []byte {
	b = binary.BigEndian.AppendUint32(b, lo)
	return binary.BigEndian.AppendUint16(b, uint16(hi))
}
func parseSpan(b []byte) (uint32, uint32) {
	return binary.BigEndian.Uint32(b), binary.BigEndian.Uint32(b[4:])
}
`,
			want: []string{"10:codecsym"},
		},
		{
			name: "method Encode pairs with DecodeT",
			src: `package wire
import "encoding/binary"
type Frame struct{ V uint32; W uint16 }
func (f *Frame) Encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, f.V)
	return binary.BigEndian.AppendUint16(b, f.W)
}
func DecodeFrame(b []byte) *Frame {
	return &Frame{V: binary.BigEndian.Uint32(b), W: uint16(binary.BigEndian.Uint64(b[4:]))}
}
`,
			want: []string{"8:codecsym"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := analyze(t, "internal/wire", tc.src, codecCfg())
			wantFindings(t, got, tc.want...)
		})
	}
}

// TestCodecSymConstantUnroll: fixed-size array loops on the encode side
// match an unrolled constant-bound loop on the decode side — both expand
// to the same token count.
func TestCodecSymConstantUnroll(t *testing.T) {
	src := `package wire
import "encoding/binary"
func writeBreakdown(b []byte, v [3]uint64) []byte {
	for _, x := range v {
		b = binary.BigEndian.AppendUint64(b, x)
	}
	return b
}
func readBreakdown(b []byte) [3]uint64 {
	var v [3]uint64
	for i := 0; i < 3; i++ {
		v[i] = binary.BigEndian.Uint64(b[i*8:])
	}
	return v
}
`
	got := analyze(t, "internal/wire", src, codecCfg())
	wantFindings(t, got)
}
