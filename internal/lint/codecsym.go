package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// CodecSym checks encode/decode symmetry for the hand-rolled binary
// codecs (MOSCKPT01, MOSSHRD02, the MOSTRC02 phase section): every
// fixed-width or varint write on the encode side must have a matching
// same-order, same-width read on the decode side. The streams are
// summarized structurally — same-package helpers are inlined, loops over
// fixed-length arrays and composite literals expand, dynamic loops become
// repeat groups, and branches flatten — so "added a field to Encode,
// forgot Decode" (the MOSSHRD01→02 phase-row skew) is a finding, not a
// fuzz-crash three PRs later.
//
// Encoders and decoders pair by convention: a package's unique
// Encode/Decode pair, method (T).Encode ↔ func Decode<suffix-of-T>,
// write*/read* and encode*/decode* name pairs, or an explicit
// //mosvet:codecpair <partner> doc directive. Envelope helpers that are
// deliberately asymmetric (checksum seal/open) opt out with a
// //mosvet:codecskip doc directive. Raw byte copies (magic strings, string
// payloads after their length prefix) carry no width and are not tracked.
var CodecSym = &Analyzer{
	Name: "codecsym",
	Doc:  "require every fixed-width write in an encoder to have a same-order, same-width read in its paired decoder",
	Run:  runCodecSym,
}

func runCodecSym(p *Package, cfg *Config) []Finding {
	pairs := codecPairs(p)
	if len(pairs) == 0 {
		return nil
	}
	sum := &codecSum{p: p, memo: make(map[*types.Func][]ctok)}
	var out []Finding
	for _, pr := range pairs {
		encFn, _ := p.Info.Defs[pr.enc.Name].(*types.Func)
		decFn, _ := p.Info.Defs[pr.dec.Name].(*types.Func)
		if encFn == nil || decFn == nil {
			continue
		}
		w := sum.fn(encFn)
		r := sum.fn(decFn)
		if len(w) == 0 || len(r) == 0 {
			continue // not a fixed-width codec pair (JSON, raw copy, …)
		}
		if d := diffStream(w, r, ""); d != "" {
			out = append(out, p.finding("codecsym", pr.dec.Name,
				"encode/decode skew between %s and %s: %s", declName(pr.enc), declName(pr.dec), d))
		}
	}
	return out
}

// ctok is one element of a codec's normalized value stream: a fixed-width
// scalar ('2'/'4'/'8' bytes), a varint ('v'), or a dynamic repeat group
// ('g') whose body repeats an unknown number of times.
type ctok struct {
	kind byte
	sub  []ctok
}

func tokString(t ctok) string {
	switch t.kind {
	case '2':
		return "u16"
	case '4':
		return "u32"
	case '8':
		return "u64"
	case 'v':
		return "varint"
	case 'g':
		parts := make([]string, len(t.sub))
		for i, s := range t.sub {
			parts[i] = tokString(s)
		}
		return "loop[" + strings.Join(parts, " ") + "]"
	}
	return "?"
}

// diffStream reports the first structural divergence between a write and a
// read stream, or "" when they match.
func diffStream(w, r []ctok, prefix string) string {
	n := len(w)
	if len(r) < n {
		n = len(r)
	}
	for i := 0; i < n; i++ {
		a, b := w[i], r[i]
		if a.kind == 'g' && b.kind == 'g' {
			if d := diffStream(a.sub, b.sub, fmt.Sprintf("%sinside the loop at position %d, ", prefix, i)); d != "" {
				return d
			}
			continue
		}
		if a.kind != b.kind {
			return fmt.Sprintf("%sposition %d writes %s but reads %s", prefix, i, tokString(a), tokString(b))
		}
	}
	if len(w) > len(r) {
		return fmt.Sprintf("%sencoder writes %d values but decoder reads %d — first unread: %s", prefix, len(w), len(r), tokString(w[len(r)]))
	}
	if len(r) > len(w) {
		return fmt.Sprintf("%sdecoder reads %d values but encoder writes %d — first unwritten: %s", prefix, len(r), len(w), tokString(r[len(w)]))
	}
	return ""
}

type codecPair struct {
	enc, dec *ast.FuncDecl
}

func declName(d *ast.FuncDecl) string {
	if d.Recv != nil {
		if t := recvTypeName(d); t != "" {
			return t + "." + d.Name.Name
		}
	}
	return d.Name.Name
}

func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// codecPairs matches this package's encoders to their decoders.
func codecPairs(p *Package) []codecPair {
	var decls []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && !hasDirective(fd.Doc, "codecskip") {
				decls = append(decls, fd)
			}
		}
	}
	byName := make(map[string][]*ast.FuncDecl)
	for _, d := range decls {
		byName[d.Name.Name] = append(byName[d.Name.Name], d)
	}
	used := make(map[*ast.FuncDecl]bool)
	var pairs []codecPair
	add := func(enc, dec *ast.FuncDecl) {
		if enc == nil || dec == nil || enc == dec || used[enc] || used[dec] {
			return
		}
		used[enc], used[dec] = true, true
		pairs = append(pairs, codecPair{enc: enc, dec: dec})
	}

	// Explicit pairing first: //mosvet:codecpair <partner> wins over every
	// convention.
	for _, d := range decls {
		args := directiveArgs(d.Doc, "codecpair")
		if len(args) == 0 {
			continue
		}
		partners := byName[args[0]]
		if len(partners) != 1 {
			continue
		}
		other := partners[0]
		if isDecoderName(d.Name.Name) && !isDecoderName(other.Name.Name) {
			add(other, d)
		} else {
			add(d, other)
		}
	}

	// A package's unique Encode/Decode pair.
	if len(byName["Encode"]) == 1 && len(byName["Decode"]) == 1 {
		add(byName["Encode"][0], byName["Decode"][0])
	}

	// Method (T).Encode ↔ func Decode<S> where S is a suffix of T
	// (ShardSpec.Encode ↔ DecodeSpec). Longest suffix wins.
	for _, enc := range byName["Encode"] {
		recv := recvTypeName(enc)
		if recv == "" || used[enc] {
			continue
		}
		var best *ast.FuncDecl
		bestLen := 0
		for name, ds := range byName {
			suffix, ok := strings.CutPrefix(name, "Decode")
			if !ok || suffix == "" || len(ds) != 1 {
				continue
			}
			if strings.HasSuffix(recv, suffix) && len(suffix) > bestLen {
				best, bestLen = ds[0], len(suffix)
			}
		}
		add(enc, best)
	}

	// write*/read* and encode*/decode* name pairs (unexported helpers:
	// writePhaseSection ↔ readPhaseSection).
	for _, d := range decls {
		for _, pre := range [...][2]string{{"write", "read"}, {"encode", "decode"}} {
			rest, ok := strings.CutPrefix(d.Name.Name, pre[0])
			if !ok || rest == "" {
				continue
			}
			if partners := byName[pre[1]+rest]; len(partners) == 1 {
				add(d, partners[0])
			}
		}
	}
	return pairs
}

func isDecoderName(name string) bool {
	return strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "decode") || strings.HasPrefix(name, "read") || strings.HasPrefix(name, "Read")
}

// codecSum summarizes function bodies into normalized token streams.
// Same-package callees inline transitively (memoized; cycles contribute
// nothing on the recursive edge).
type codecSum struct {
	p    *Package
	memo map[*types.Func][]ctok
}

func (c *codecSum) fn(fn *types.Func) []ctok {
	if s, ok := c.memo[fn]; ok {
		return s
	}
	c.memo[fn] = nil // cycle guard
	decl := c.p.funcDecl(fn)
	if decl == nil || decl.Body == nil {
		return nil
	}
	s := c.block(decl.Body.List)
	c.memo[fn] = s
	return s
}

func (c *codecSum) block(list []ast.Stmt) []ctok {
	var out []ctok
	for _, st := range list {
		out = append(out, c.stmt(st)...)
	}
	return out
}

func (c *codecSum) stmt(s ast.Stmt) []ctok {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return c.expr(st.X)
	case *ast.AssignStmt:
		var out []ctok
		for _, e := range st.Rhs {
			out = append(out, c.expr(e)...)
		}
		for _, e := range st.Lhs {
			out = append(out, c.expr(e)...)
		}
		return out
	case *ast.DeclStmt:
		var out []ctok
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = append(out, c.expr(v)...)
					}
				}
			}
		}
		return out
	case *ast.ReturnStmt:
		var out []ctok
		for _, e := range st.Results {
			out = append(out, c.expr(e)...)
		}
		return out
	case *ast.IfStmt:
		// Conditional sections flatten: the stream lists what *may* be
		// written, in order, and the decode side mirrors the same branches.
		var out []ctok
		if st.Init != nil {
			out = append(out, c.stmt(st.Init)...)
		}
		out = append(out, c.expr(st.Cond)...)
		out = append(out, c.block(st.Body.List)...)
		if st.Else != nil {
			out = append(out, c.stmt(st.Else)...)
		}
		return out
	case *ast.BlockStmt:
		return c.block(st.List)
	case *ast.SwitchStmt:
		var out []ctok
		if st.Init != nil {
			out = append(out, c.stmt(st.Init)...)
		}
		if st.Tag != nil {
			out = append(out, c.expr(st.Tag)...)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				out = append(out, c.block(clause.Body)...)
			}
		}
		return out
	case *ast.TypeSwitchStmt:
		var out []ctok
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				out = append(out, c.block(clause.Body)...)
			}
		}
		return out
	case *ast.ForStmt:
		var out []ctok
		if st.Init != nil {
			out = append(out, c.stmt(st.Init)...)
		}
		if st.Cond != nil {
			out = append(out, c.expr(st.Cond)...)
		}
		body := c.block(st.Body.List)
		if st.Post != nil {
			body = append(body, c.stmt(st.Post)...)
		}
		return append(out, repeat(body, forCount(c.p, st))...)
	case *ast.RangeStmt:
		out := c.expr(st.X)
		body := c.block(st.Body.List)
		return append(out, repeat(body, rangeCount(c.p, st.X))...)
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt)
	case *ast.IncDecStmt:
		return c.expr(st.X)
	case *ast.SendStmt:
		return append(c.expr(st.Chan), c.expr(st.Value)...)
	}
	// defer/go run outside the linear stream; branches carry no tokens.
	return nil
}

// expr walks an expression in evaluation order (arguments before the call
// they feed) and emits its tokens. Function literals are skipped: their
// bodies run when invoked, and invocations through variables are
// unresolvable.
func (c *codecSum) expr(e ast.Expr) []ctok {
	switch e := e.(type) {
	case *ast.CallExpr:
		var out []ctok
		for _, a := range e.Args {
			out = append(out, c.expr(a)...)
		}
		if tok, ok := binaryToken(c.p.Info, e); ok {
			return append(out, tok)
		}
		if fn := calleeFunc(c.p.Info, e); fn != nil {
			if decl := c.p.funcDecl(fn); decl != nil && !hasDirective(decl.Doc, "codecskip") {
				return append(out, c.fn(fn)...)
			}
		}
		return out
	case *ast.ParenExpr:
		return c.expr(e.X)
	case *ast.BinaryExpr:
		return append(c.expr(e.X), c.expr(e.Y)...)
	case *ast.UnaryExpr:
		return c.expr(e.X)
	case *ast.StarExpr:
		return c.expr(e.X)
	case *ast.SelectorExpr:
		return c.expr(e.X)
	case *ast.IndexExpr:
		return append(c.expr(e.X), c.expr(e.Index)...)
	case *ast.SliceExpr:
		out := c.expr(e.X)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				out = append(out, c.expr(idx)...)
			}
		}
		return out
	case *ast.CompositeLit:
		var out []ctok
		for _, el := range e.Elts {
			out = append(out, c.expr(el)...)
		}
		return out
	case *ast.KeyValueExpr:
		return c.expr(e.Value)
	case *ast.TypeAssertExpr:
		return c.expr(e.X)
	}
	return nil
}

// maxExpand caps loop unrolling; larger fixed bounds degrade to a repeat
// group, which still checks the body's shape.
const maxExpand = 64

func repeat(body []ctok, n int) []ctok {
	if len(body) == 0 {
		return nil
	}
	if n < 0 || n > maxExpand {
		return []ctok{{kind: 'g', sub: body}}
	}
	out := make([]ctok, 0, n*len(body))
	for i := 0; i < n; i++ {
		out = append(out, body...)
	}
	return out
}

// rangeCount resolves the trip count of a range statement: the length of a
// fixed-size array operand or of a composite-literal operand; -1 when
// dynamic.
func rangeCount(p *Package, x ast.Expr) int {
	x = ast.Unparen(x)
	if cl, ok := x.(*ast.CompositeLit); ok {
		if t := p.Info.TypeOf(cl); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array:
				return len(cl.Elts)
			}
		}
	}
	t := p.Info.TypeOf(x)
	if t == nil {
		return -1
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return int(arr.Len())
	}
	return -1
}

// forCount resolves `for i := 0; i < C; i++` with constant C; -1 otherwise.
func forCount(p *Package, st *ast.ForStmt) int {
	init, ok := st.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Rhs) != 1 {
		return -1
	}
	if tv, ok := p.Info.Types[init.Rhs[0]]; !ok || tv.Value == nil || constant.Sign(tv.Value) != 0 {
		return -1
	}
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return -1
	}
	tv, ok := p.Info.Types[cond.Y]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return -1
	}
	n, exact := constant.Int64Val(constant.ToInt(tv.Value))
	if !exact || n < 0 {
		return -1
	}
	return int(n)
}

// binaryToken classifies an encoding/binary call as a stream token.
func binaryToken(info *types.Info, call *ast.CallExpr) (ctok, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "encoding/binary" {
		return ctok{}, false
	}
	name := fn.Name()
	switch {
	case strings.HasSuffix(name, "Uint16"):
		return ctok{kind: '2'}, true
	case strings.HasSuffix(name, "Uint32"):
		return ctok{kind: '4'}, true
	case strings.HasSuffix(name, "Uint64"):
		return ctok{kind: '8'}, true
	case strings.Contains(name, "Varint") || strings.Contains(name, "Uvarint"):
		return ctok{kind: 'v'}, true
	}
	return ctok{}, false
}
