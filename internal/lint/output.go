// Machine-readable mosvet output: the JSON report CI archives, the SARIF
// rendering code-scanning UIs ingest, and the committed suppression-audit
// baseline. The baseline pins the module's exemption inventory — every
// //mosvet:ignore, ckptexempt, codecskip, and timing directive — so a new
// exemption fails CI until it is regenerated (and thereby reviewed) in the
// same change. Entries are compared by file, directive, checks, and reason;
// the recorded line is a navigation hint refreshed on regeneration, not
// part of identity, so unrelated edits above a directive do not churn CI.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// JSONFinding is one finding in the machine-readable report.
type JSONFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// Report is the mosvet -json payload: findings plus the exemption
// inventory, with module-relative paths.
type Report struct {
	Findings     []JSONFinding `json:"findings"`
	Suppressions []Suppression `json:"suppressions"`
}

// BuildReport relativizes a module analysis against its root.
func BuildReport(res *ModuleResult) *Report {
	r := &Report{
		Findings:     []JSONFinding{},
		Suppressions: relativeSuppressions(res),
	}
	for _, f := range res.Findings {
		r.Findings = append(r.Findings, JSONFinding{
			Check:   f.Check,
			File:    relTo(res.Root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Message: f.Message,
		})
	}
	return r
}

func relativeSuppressions(res *ModuleResult) []Suppression {
	out := make([]Suppression, 0, len(res.Suppressions))
	for _, s := range res.Suppressions {
		s.File = relTo(res.Root, s.File)
		out = append(out, s)
	}
	return out
}

func relTo(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// sarif mirrors the minimal SARIF 2.1.0 subset code-scanning consumers
// require: one run, one rule per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders the report as a SARIF 2.1.0 document.
func (r *Report) SARIF() ([]byte, error) {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "mosvet"}},
		Results: []sarifResult{},
	}
	for _, a := range Analyzers() {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	// The unsuppressible directive-hygiene pseudo-check also emits results.
	run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
		ID:               "mosvet",
		ShortDescription: sarifText{Text: "malformed or unknown mosvet directive"},
	})
	for _, f := range r.Findings {
		line := f.Line
		if line < 1 {
			line = 1
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: line, StartColumn: f.Column},
			}}},
		})
	}
	return json.MarshalIndent(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}, "", "  ")
}

// Baseline is the committed suppression-audit file.
type Baseline struct {
	// Note documents the regeneration command for whoever trips the guard.
	Note         string        `json:"note"`
	Suppressions []Suppression `json:"suppressions"`
}

// BaselineNote is written into every generated baseline.
const BaselineNote = "suppression-audit baseline — regenerate with: go run ./cmd/mosvet -write-baseline mosvet-baseline.json ./... (entries are compared by file/directive/checks/reason; line is a navigation hint)"

// NewBaseline builds the baseline for a module analysis.
func NewBaseline(res *ModuleResult) *Baseline {
	sups := relativeSuppressions(res)
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return &Baseline{Note: BaselineNote, Suppressions: sups}
}

// WriteFile writes the baseline as stable, indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaselineFile loads a committed baseline.
func ReadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// suppressionKey is the identity used for baseline comparison — the line
// number is deliberately excluded so edits above a directive do not churn
// the audit.
func suppressionKey(s Suppression) string {
	return s.File + "\x00" + s.Directive + "\x00" + strings.Join(s.Checks, ",") + "\x00" + s.Reason
}

// Diff compares the committed baseline against a fresh inventory and
// returns human-readable mismatch lines: exemptions added since the
// baseline (new suppressions that have not been re-audited) and baseline
// entries that no longer exist (stale audit records). Empty means fresh.
func (b *Baseline) Diff(fresh []Suppression) []string {
	count := make(map[string]int)
	detail := make(map[string]Suppression)
	for _, s := range b.Suppressions {
		count[suppressionKey(s)]++
		detail[suppressionKey(s)] = s
	}
	var out []string
	for _, s := range fresh {
		k := suppressionKey(s)
		if count[k] > 0 {
			count[k]--
			continue
		}
		out = append(out, fmt.Sprintf("exemption not in baseline: %s:%d //mosvet:%s %s %s",
			s.File, s.Line, s.Directive, strings.Join(s.Checks, ","), s.Reason))
	}
	keys := make([]string, 0, len(count))
	for k, n := range count {
		if n > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := detail[k]
		for i := 0; i < count[k]; i++ {
			out = append(out, fmt.Sprintf("baseline entry no longer present: %s //mosvet:%s %s %s",
				s.File, s.Directive, strings.Join(s.Checks, ","), s.Reason))
		}
	}
	return out
}

// VerifyBaseline is the one-call freshness guard used by both the mosvet
// -baseline flag and the root test: load the committed baseline, diff it
// against the module's fresh inventory, and return the mismatches.
func VerifyBaseline(path string, res *ModuleResult) ([]string, error) {
	b, err := ReadBaselineFile(path)
	if err != nil {
		return nil, err
	}
	return b.Diff(relativeSuppressions(res)), nil
}
