package lint

import "strings"

// Config is the per-package policy for the analyzer suite. The zero value
// enables every check but scopes nothing; use DefaultConfig for the repo's
// policy.
type Config struct {
	// DetClockPackages are import-path prefixes (relative to the module
	// root, e.g. "internal/sim") whose code must not read the wall clock or
	// the global math/rand generator. Functions annotated //mosvet:timing
	// are exempt scopes (scheduler ETA, serve metrics).
	DetClockPackages []string

	// LockIOPackages are import-path prefixes whose code must not hold a
	// sync.Mutex/RWMutex across blocking operations (file/network I/O,
	// channel ops, HTTP calls, sleeps).
	LockIOPackages []string

	// LockOrderPackages are import-path prefixes over which lockorder
	// builds the module-wide mutex acquisition graph and rejects cycles,
	// inconsistent pairwise orderings, and transitively-blocking calls
	// made while a lock is held.
	LockOrderPackages []string

	// CkptCodecPackages are the packages holding hand-rolled checkpoint
	// codecs; ckptfields requires their encode and decode paths to carry
	// every field of every state struct reachable from a Snapshot type.
	CkptCodecPackages []string

	// PhaseOwnerPackages are the packages allowed to construct
	// trace.Phase values and mutate Phase fields. Everywhere else,
	// phasebound flags raw Phase construction and partition arithmetic —
	// phases must come from Phases-validated constructors. Matched by
	// import-path suffix so synthetic test packages scope correctly.
	PhaseOwnerPackages []string

	// Binaries are the cmd packages wired into the driver's policy: they
	// are analyzed like every other package, and their flag help strings
	// are subject to the units audit (docs/static-analysis.md).
	Binaries []string

	// Checks restricts which analyzers run; empty means all.
	Checks []string
}

// DefaultConfig is the repo policy mosvet enforces in CI.
func DefaultConfig() *Config {
	return &Config{
		// The simulation core: everything between a trace and a counter
		// must be a pure function of its inputs, or counters stop being
		// bit-identical across pooled/fused/sampled replay.
		DetClockPackages: []string{
			"internal/cpu",
			"internal/partialsim",
			"internal/sim",
			"internal/tlb",
			"internal/cache",
			"internal/walker",
			"internal/mem",
			"internal/trace",
			// Index kernels emit trace accesses from seeded RNGs; a
			// wall-clock or global-rand read would make generated traces —
			// and every phased golden test built on them — irreproducible.
			"internal/dbindex",
			"internal/models",
			"internal/stats",
			"internal/ckpt",
			// The planner sits on top of the core and must stay seeded:
			// a wall-clock or global-rand read would break planned sweeps'
			// bit-reproducibility.
			"internal/plan",
			// The sweep fabric's merge path must stay clock-free: shard
			// decomposition and merge ordering are part of the bit-identity
			// claim. Lease expiry and heartbeats are the annotated
			// //mosvet:timing exceptions — they schedule work, never shape
			// results.
			"internal/cluster",
		},
		// The serving tier: a lock held across blocking I/O turns one slow
		// disk or peer into a stalled /v1/predict for every client.
		LockIOPackages: []string{
			"internal/serve",
			"internal/serve/registry",
			// The coordinator serves worker HTTP traffic and the merge path
			// from one mutex; holding it across network reads would stall
			// the whole fleet.
			"internal/cluster",
		},
		// The lock-graph scope: the coordinator's four mutexes plus the
		// serving tier's registry/job locks are the only places where two
		// locks can be held at once in production paths.
		LockOrderPackages: []string{
			"internal/cluster",
			"internal/serve",
			"internal/serve/registry",
		},
		// MOSCKPT01 lives here; its Encode/Decode must carry every field
		// of every struct reachable from a Snapshot type.
		CkptCodecPackages: []string{
			"internal/ckpt",
		},
		// Only the trace package may build Phase values; everyone else
		// goes through Phases-validated constructors.
		PhaseOwnerPackages: []string{
			"internal/trace",
		},
		Binaries: []string{
			"cmd/mosbench",
			"cmd/mosd",
		},
	}
}

// CheckEnabled reports whether the named analyzer should run.
func (c *Config) CheckEnabled(name string) bool {
	if len(c.Checks) == 0 {
		return true
	}
	for _, n := range c.Checks {
		if n == name {
			return true
		}
	}
	return false
}

// pathIn reports whether a module-relative import path falls under any of
// the given prefixes ("internal/serve" covers "internal/serve/registry").
func pathIn(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
