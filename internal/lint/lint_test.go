package lint

import (
	"fmt"
	"strings"
	"testing"
)

// analyze runs the suite over a single-file synthetic package scoped at
// relPath and returns findings as "line:check" strings.
func analyze(t *testing.T, relPath, src string, cfg *Config) []string {
	t.Helper()
	fs, err := AnalyzeSource(relPath, map[string]string{"src.go": src}, cfg)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, fmt.Sprintf("%d:%s", f.Pos.Line, f.Check))
	}
	return out
}

func wantFindings(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(want) == 0 {
		want = []string{}
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
	}
}

func TestDetClock(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "wall clock in sim package",
			path: "internal/sim",
			src: `package p
import "time"
func eta() time.Time { return time.Now() }
func lap(t0 time.Time) time.Duration { return time.Since(t0) }
`,
			want: []string{"3:detclock", "4:detclock"},
		},
		{
			name: "timing-annotated scope is exempt",
			path: "internal/sim",
			src: `package p
import "time"

// eta reports progress.
//
//mosvet:timing progress ETA is presentation, not simulation
func eta(t0 time.Time) time.Duration { return time.Since(t0) }
`,
			want: nil,
		},
		{
			name: "global rand banned, seeded generator allowed",
			path: "internal/trace",
			src: `package p
import "math/rand"
func noisy() int { return rand.Intn(8) }
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}
`,
			want: []string{"3:detclock"},
		},
		{
			name: "checkpoint codec is a restricted package",
			path: "internal/ckpt",
			src: `package p
import "time"
func stamp() int64 { return time.Now().UnixNano() }
`,
			want: []string{"3:detclock"},
		},
		{
			name: "outside restricted packages nothing fires",
			path: "internal/report",
			src: `package p
import "time"
func now() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "time.Sleep and formatting are not clock reads",
			path: "internal/sim",
			src: `package p
import "time"
func fmtd(d time.Duration) string { return d.String() }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, DefaultConfig()), tc.want...)
		})
	}
}

func TestDetClockConfigScope(t *testing.T) {
	src := `package p
import "time"
func now() time.Time { return time.Now() }
`
	// Custom config restricting a different subtree: the same source flags
	// under it and passes outside it.
	cfg := &Config{DetClockPackages: []string{"pkg/core"}}
	wantFindings(t, analyze(t, "pkg/core/engine", src, cfg), "3:detclock")
	wantFindings(t, analyze(t, "pkg/ui", src, cfg))
}

func TestMapOrder(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "append without sort",
			src: `package p
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: []string{"4:maporder"},
		},
		{
			name: "collect-then-sort idiom is clean",
			src: `package p
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
			want: nil,
		},
		{
			name: "float accumulation",
			src: `package p
func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
`,
			want: []string{"4:maporder"},
		},
		{
			name: "output writes",
			src: `package p
import (
	"fmt"
	"strings"
)
func dump(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`,
			want: []string{"8:maporder", "11:maporder"},
		},
		{
			name: "order-insensitive bodies are clean",
			src: `package p
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	n := 0
	for k, v := range m {
		out[v] = k
		n++
	}
	return out
}
`,
			want: nil,
		},
		{
			name: "range over slice never fires",
			src: `package p
func total(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "internal/anywhere", tc.src, DefaultConfig()), tc.want...)
		})
	}
}

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "raw float equality",
			src: `package p
func eq(a, b float64) bool { return a == b }
func ne(a, b float32) bool { return a != b }
`,
			want: []string{"2:floateq", "3:floateq"},
		},
		{
			name: "Float64bits-mediated comparison is clean",
			src: `package p
import "math"
func eq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
`,
			want: nil,
		},
		{
			name: "integer and string equality are clean",
			src: `package p
func f(a, b int, s string) bool { return a == b && s != "x" }
`,
			want: nil,
		},
		{
			name: "constant-folded comparison is clean",
			src: `package p
const c = 1.5 == 2.5
`,
			want: nil,
		},
		{
			name: "comparison against zero still fires",
			src: `package p
func z(a float64) bool { return a == 0 }
`,
			want: []string{"2:floateq"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "internal/anywhere", tc.src, DefaultConfig()), tc.want...)
		})
	}
}

func TestLockIO(t *testing.T) {
	cases := []struct {
		name string
		path string
		src  string
		want []string
	}{
		{
			name: "file read between Lock and Unlock",
			path: "internal/serve",
			src: `package p
import (
	"os"
	"sync"
)
type s struct{ mu sync.Mutex }
func (x *s) bad(path string) {
	x.mu.Lock()
	os.ReadFile(path)
	x.mu.Unlock()
}
func (x *s) good(path string) {
	x.mu.Lock()
	x.mu.Unlock()
	os.ReadFile(path)
}
`,
			want: []string{"9:lockio"},
		},
		{
			name: "deferred unlock holds to end of function",
			path: "internal/serve/registry",
			src: `package p
import (
	"os"
	"sync"
)
type s struct{ mu sync.RWMutex }
func (x *s) bad(path string, ch chan int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	ch <- 1
	os.Stat(path)
}
`,
			want: []string{"10:lockio", "11:lockio"},
		},
		{
			name: "channel receive and blocking select under RLock",
			path: "internal/serve",
			src: `package p
import "sync"
func bad(mu *sync.RWMutex, ch chan int) int {
	mu.RLock()
	v := <-ch
	select {
	case w := <-ch:
		v += w
	}
	mu.RUnlock()
	return v
}
`,
			want: []string{"5:lockio", "6:lockio"},
		},
		{
			name: "non-blocking signals under lock are clean",
			path: "internal/serve",
			src: `package p
import "sync"
func ok(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	close(ch)
	select {
	case ch <- 1:
	default:
	}
	mu.Unlock()
}
`,
			want: nil,
		},
		{
			name: "function literal is its own scope",
			path: "internal/serve",
			src: `package p
import (
	"os"
	"sync"
)
func ok(mu *sync.Mutex, path string) func() {
	mu.Lock()
	f := func() { os.ReadFile(path) } // runs after Unlock
	mu.Unlock()
	return f
}
`,
			want: nil,
		},
		{
			name: "blocking I/O inside a held loop",
			path: "internal/serve",
			src: `package p
import (
	"os"
	"sync"
)
func bad(mu *sync.Mutex, paths []string) {
	mu.Lock()
	defer mu.Unlock()
	for _, p := range paths {
		os.Stat(p)
	}
}
`,
			want: []string{"10:lockio"},
		},
		{
			name: "outside serving packages nothing fires",
			path: "internal/sim",
			src: `package p
import (
	"os"
	"sync"
)
func ok(mu *sync.Mutex, path string) {
	mu.Lock()
	os.ReadFile(path)
	mu.Unlock()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, tc.path, tc.src, DefaultConfig()), tc.want...)
		})
	}
}

func TestHotPath(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "annotated kernel with violations",
			src: `package p
import "fmt"

// kernel replays.
//
//mosvet:hotpath
func kernel(xs []int) (int, error) {
	defer func() {}()
	m := map[int]bool{}
	n := make(map[int]int, 4)
	_ = n
	for _, x := range xs {
		m[x] = true
	}
	if len(m) > 3 {
		return 0, fmt.Errorf("too many: %d", len(m))
	}
	return len(m), nil
}
`,
			want: []string{"8:hotpath", "9:hotpath", "10:hotpath", "16:hotpath"},
		},
		{
			name: "interface conversion in annotated kernel",
			src: `package p

//mosvet:hotpath
func kernel(x int) any { return any(x) }
`,
			want: []string{"4:hotpath"},
		},
		{
			name: "unannotated function is free to do all of it",
			src: `package p
import "fmt"
func helper(xs []int) error {
	defer func() {}()
	m := map[int]bool{}
	_ = m
	return fmt.Errorf("n=%d", len(xs))
}
`,
			want: nil,
		},
		{
			name: "clean annotated kernel",
			src: `package p

//mosvet:hotpath
func kernel(xs []int, acc []float64) {
	for i, x := range xs {
		acc[i%len(acc)] += float64(x)
	}
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantFindings(t, analyze(t, "internal/cpu", tc.src, DefaultConfig()), tc.want...)
		})
	}
	// The checkpoint codec package carries the same hotpath discipline as the
	// replay kernels it feeds (segment kernels snapshot state mid-replay).
	t.Run("hotpath applies in internal/ckpt", func(t *testing.T) {
		src := `package p
import "fmt"

//mosvet:hotpath
func encode(buf []byte) error {
	defer func() {}()
	return fmt.Errorf("short write: %d", len(buf))
}
`
		wantFindings(t, analyze(t, "internal/ckpt", src, DefaultConfig()),
			"6:hotpath", "7:hotpath")
	})
}

func TestSuppression(t *testing.T) {
	t.Run("trailing same-line ignore with reason", func(t *testing.T) {
		wantFindings(t, analyze(t, "internal/stats", `package p
func eq(a, b float64) bool { return a == b } //mosvet:ignore floateq exact sentinel, justified here
`, DefaultConfig()))
	})
	t.Run("leading previous-line ignore with reason", func(t *testing.T) {
		wantFindings(t, analyze(t, "internal/stats", `package p
func eq(a, b float64) bool {
	//mosvet:ignore floateq exact sentinel, justified here
	return a == b
}
`, DefaultConfig()))
	})
	t.Run("ignore without reason is itself a finding", func(t *testing.T) {
		wantFindings(t, analyze(t, "internal/stats", `package p
func eq(a, b float64) bool {
	//mosvet:ignore floateq
	return a == b
}
`, DefaultConfig()), "3:mosvet", "4:floateq")
	})
	t.Run("ignore for a different check does not suppress", func(t *testing.T) {
		wantFindings(t, analyze(t, "internal/stats", `package p
func eq(a, b float64) bool {
	//mosvet:ignore maporder wrong check named
	return a == b
}
`, DefaultConfig()), "4:floateq")
	})
	t.Run("comma list suppresses multiple checks", func(t *testing.T) {
		wantFindings(t, analyze(t, "internal/serve", `package p
import (
	"os"
	"sync"
)
func f(mu *sync.Mutex, path string, a, b float64) bool {
	mu.Lock()
	//mosvet:ignore lockio,floateq demo of a multi-check suppression
	os.Setenv("k", "v")
	_, _ = os.ReadFile(path) //mosvet:ignore lockio cold startup path, no traffic yet
	mu.Unlock()
	return a == b //mosvet:ignore floateq exact sentinel
}
`, DefaultConfig()))
	})
}

func TestConfigChecksSubset(t *testing.T) {
	src := `package p
import "time"
func f(a, b float64) bool {
	_ = time.Now()
	return a == b
}
`
	cfg := DefaultConfig()
	cfg.Checks = []string{"floateq"}
	wantFindings(t, analyze(t, "internal/sim", src, cfg), "5:floateq")
	cfg.Checks = []string{"detclock"}
	wantFindings(t, analyze(t, "internal/sim", src, cfg), "4:detclock")
}

func TestMultiFilePackage(t *testing.T) {
	fs, err := AnalyzeSource("internal/stats", map[string]string{
		"a.go": "package p\n\nfunc Eq(a, b float64) bool { return a == b }\n",
		"b.go": "package p\n\nvar Sink = Eq(1, 2)\n",
	}, DefaultConfig())
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	// Synthetic filenames are prefixed with their package path so
	// suppression directives never collide across packages.
	if len(fs) != 1 || fs[0].Check != "floateq" || fs[0].Pos.Filename != "internal/stats/a.go" {
		t.Fatalf("want one floateq finding in internal/stats/a.go, got %v", fs)
	}
}

func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"detclock", "maporder", "floateq", "lockio", "hotpath", "ckptfields", "codecsym", "lockorder", "phasebound"}
	got := AnalyzerNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("analyzer set changed: got %v want %v (update docs/static-analysis.md)", got, want)
	}
}
