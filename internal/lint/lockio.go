package lint

import (
	"go/ast"
	"go/types"
)

// LockIO flags blocking operations — file and network I/O, channel sends
// and receives, selects, HTTP calls, sleeps — executed while a sync.Mutex
// or RWMutex is held, in the serving packages. The serving tier coalesces
// concurrent predict waves through one registry read-lock; a disk read or
// channel handshake inside that critical section turns a single slow
// operation into head-of-line blocking for every client. The analysis is a
// linear scan per function: a lock is considered held from the Lock/RLock
// call until the matching Unlock/RUnlock statement in the same block (or to
// the end of the function when the unlock is deferred). Signal-only channel
// operations that are provably non-blocking (close, default-guarded
// selects) are not flagged.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "flag blocking I/O, channel ops, and HTTP calls while a mutex is held in serving packages",
	Run:  runLockIO,
}

func runLockIO(p *Package, cfg *Config) []Finding {
	if !pathIn(p.Path, cfg.LockIOPackages) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				s := &lockScan{p: p}
				s.stmts(body.List, false)
				out = append(out, s.findings...)
			}
			return true // descend: FuncLits inside are their own scopes
		})
	}
	return out
}

type lockScan struct {
	p        *Package
	findings []Finding
}

// stmts walks a statement list linearly, tracking whether a mutex is held,
// and returns the held state at the end of the list. Branch bodies inherit
// the current state; an unlock inside a branch does not clear the state for
// the statements after the branch (conservative — suppress with a reason if
// a legitimate pattern trips this).
func (s *lockScan) stmts(list []ast.Stmt, held bool) bool {
	for _, stmt := range list {
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if kind := mutexCallKind(s.p.Info, st.X); kind == lockAcquire {
				held = true
				continue
			} else if kind == lockRelease {
				held = false
				continue
			}
		case *ast.DeferStmt:
			if kind := mutexCallKind(s.p.Info, st.Call); kind == lockRelease {
				continue // held to end of function; later statements stay flagged
			}
		case *ast.BlockStmt:
			held = s.stmts(st.List, held)
			continue
		case *ast.IfStmt:
			if held {
				s.blocking(st)
			} else {
				s.stmts(st.Body.List, held)
				if st.Else != nil {
					s.stmts([]ast.Stmt{st.Else}, held)
				}
			}
			continue
		case *ast.ForStmt:
			if held {
				s.blocking(st)
			} else {
				s.stmts(st.Body.List, held)
			}
			continue
		case *ast.RangeStmt:
			if held {
				s.blocking(st)
			} else {
				s.stmts(st.Body.List, held)
			}
			continue
		case *ast.SwitchStmt:
			if held {
				s.blocking(st)
			} else {
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						s.stmts(cc.Body, held)
					}
				}
			}
			continue
		case *ast.TypeSwitchStmt:
			if held {
				s.blocking(st)
			} else {
				for _, c := range st.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						s.stmts(cc.Body, held)
					}
				}
			}
			continue
		}
		if held {
			s.blocking(stmt)
		}
	}
	return held
}

// blocking reports every blocking operation inside the statement, without
// descending into function literals (their bodies run later, outside the
// critical section — unless invoked synchronously, which the linear scan
// cannot see).
func (s *lockScan) blocking(stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			s.add(n, "channel send while mutex held")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				s.add(n, "channel receive while mutex held")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				s.add(n, "blocking select while mutex held")
			}
			return false
		case *ast.RangeStmt:
			if t := s.p.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.add(n, "range over channel while mutex held")
				}
			}
		case *ast.CallExpr:
			if reason := blockingCall(s.p.Info, n); reason != "" {
				s.add(n, reason+" while mutex held")
			}
		}
		return true
	})
}

func (s *lockScan) add(n ast.Node, msg string) {
	s.findings = append(s.findings, s.p.finding("lockio", n,
		"%s — move it outside the critical section or copy the state out first", msg))
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

type mutexCall int

const (
	notMutex mutexCall = iota
	lockAcquire
	lockRelease
)

// mutexCallKind classifies expressions like mu.Lock() / r.mu.RUnlock().
func mutexCallKind(info *types.Info, e ast.Expr) mutexCall {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return notMutex
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" || isPkgLevelFunc(fn) {
		return notMutex
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return lockAcquire
	case "Unlock", "RUnlock":
		return lockRelease
	}
	return notMutex
}

// osBlocking are the package-level os functions that hit the filesystem.
var osBlocking = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Chmod": true,
	"Chtimes": true, "Truncate": true, "Symlink": true, "Link": true,
}

// ioBlocking are the io helpers that drive reads/writes to completion.
var ioBlocking = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	"ReadFull": true, "WriteString": true,
}

// blockingCall classifies a call as blocking and names it, or returns "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	pkg, name := funcPkgPath(fn), fn.Name()
	switch pkg {
	case "os":
		if isPkgLevelFunc(fn) {
			if osBlocking[name] {
				return "file I/O (os." + name + ")"
			}
			return ""
		}
		// Methods on *os.File and friends: reads, writes, syncs.
		switch name {
		case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Close", "Readdir", "ReadDir", "Seek", "Truncate":
			return "file I/O ((*os.File)." + name + ")"
		}
	case "io":
		if isPkgLevelFunc(fn) && ioBlocking[name] {
			return "I/O (io." + name + ")"
		}
	case "net/http":
		return "HTTP call (http." + name + ")"
	case "net":
		return "network call (net." + name + ")"
	case "os/exec":
		return "subprocess (exec." + name + ")"
	case "time":
		if name == "Sleep" {
			return "sleep (time.Sleep)"
		}
	case "bufio":
		if !isPkgLevelFunc(fn) && name == "Flush" {
			return "buffered flush (bufio." + name + ")"
		}
	}
	return ""
}
