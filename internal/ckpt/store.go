package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is an on-disk checkpoint cache, one MOSCKPT01 file per (key,
// position) pair. Keys encode everything the state depends on — trace
// identity, platform, layout, engine kind, fidelity, sampling plan — and
// the stored key and position are verified on load, so a hash collision or
// a stale file can never smuggle the wrong state into a replay. A Store is
// safe for concurrent use: writes are atomic (temp + rename, the trace
// cache's discipline) and reads only ever see complete files.
type Store struct {
	Dir string
}

// fnv1a is the 64-bit FNV-1a hash used for checkpoint file stems.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Path returns the file path a (key, position) checkpoint lives at.
func (st *Store) Path(key string, pos int) string {
	return filepath.Join(st.Dir, fmt.Sprintf("%016x-%d.mosckpt", fnv1a(key), pos))
}

// Save writes the state for (key, pos) atomically: a temp file in the
// store directory, synced, then renamed into place, so a crashed or
// concurrent writer never leaves a truncated checkpoint for a later load
// to trip over — readers see the old complete file or the new one, never
// a prefix.
func (st *Store) Save(key string, pos int, s *MachineState) error {
	if err := os.MkdirAll(st.Dir, 0o755); err != nil {
		return err
	}
	return Save(st.Path(key, pos), key, pos, s)
}

// Load reads the state for (key, pos). A missing file returns (nil, nil) —
// a cache miss, not an error. A present-but-unusable file (truncated by a
// crashed pre-atomic-write tool, wrong version, key hash collision, stale
// position) returns an error; callers treat it as a miss and regenerate,
// mirroring the trace cache's partial-file recovery.
func (st *Store) Load(key string, pos int) (*MachineState, error) {
	f, err := os.Open(st.Path(key, pos))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	gotKey, gotPos, s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("ckpt: loading %s: %w", st.Path(key, pos), err)
	}
	if gotKey != key {
		return nil, fmt.Errorf("ckpt: %s holds key %q, want %q (hash collision?)", st.Path(key, pos), gotKey, key)
	}
	if gotPos != pos {
		return nil, fmt.Errorf("ckpt: %s holds position %d, want %d", st.Path(key, pos), gotPos, pos)
	}
	return s, nil
}

// Save writes one checkpoint file atomically (temp + sync + rename).
func Save(path, key string, pos int, s *MachineState) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()
		os.Remove(tmp)
	}
	if _, err := s.Encode(f, key, pos); err != nil {
		cleanup()
		return err
	}
	// Sync before rename: a crash after the rename must not resurrect an
	// empty file from an unflushed page cache.
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads one checkpoint file written by Save.
func Load(path string) (key string, pos int, s *MachineState, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, nil, err
	}
	defer f.Close()
	return Decode(f)
}
