// Package ckpt defines the whole-machine checkpoint: the state a replay
// engine needs to resume a trace mid-stream as if it had replayed the
// whole prefix itself. Every stateful model layer exposes a
// Snapshot/Restore pair (cache.Hierarchy, tlb.TLB, walker.Walker; the
// mem.Translator memo is a pure performance cache, invisible to counters,
// and restores by clearing); the engines (internal/cpu,
// internal/partialsim) compose those component states with their own
// clock and accumulator state into a MachineState.
//
// The binary serialization, MOSCKPT01, follows the same hand-rolled codec
// discipline as the MOSTRC02 trace format (internal/trace/io.go): a fixed
// magic, bounded length fields validated before allocation, little-endian
// fixed-width integers, floats as IEEE-754 bit patterns (Float64bits), and
// an atomic temp+rename write path — so checkpoints can live in the trace
// cache directory and survive process restarts bit-identically.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "MOSCKPT0"
//	version byte     '1' (bytes 0..9 spell "MOSCKPT01")
//	keyLen  uint16   checkpoint key length
//	key     []byte   caller-chosen identity (trace, platform, layout, ...)
//	pos     uint64   trace position the state corresponds to
//	flags   uint8    bit0 = has clock state (cpu engine),
//	                 bit1 = walker-private ablation cache present
//	clock   2×f64 (now, missRate), 2×u64 (walkCycles, instructions),
//	        5×f64 breakdown, u32 len + len×f64 walkerFree
//	sums    4×u64 TLB counts, 8×u64 hierarchy stats, 5×u64 partial metrics
//	tlb     5 × (u32 len + len×u64 tags), 4×u64 counts, 4×u64 missBySize
//	hier    3 × (u32 len + len×u32 tags), [flag bit1: u32 len + len×u32],
//	        8×u64 stats
//	walk    3 × PWC (u32 entries, u32 n, n×u64 keys, n×u16 prev,
//	        n×u16 next, u16 head, u16 tail), 7×u64 stats
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mosaic/internal/cache"
	"mosaic/internal/tlb"
	"mosaic/internal/walker"
)

// Magic is the MOSCKPT01 file prefix: 8-byte format magic followed by a
// version byte, so the first nine bytes of a checkpoint file spell
// "MOSCKPT01".
var Magic = [8]byte{'M', 'O', 'S', 'C', 'K', 'P', 'T', '0'}

// Version is the format version byte following the magic.
const Version = '1'

const (
	// maxKeyLen bounds the checkpoint-key field.
	maxKeyLen = 1 << 12
	// maxTagArray is a sanity bound on serialized tag arrays (the largest
	// real one is the L3's ~246K lines), not a design limit.
	maxTagArray = 1 << 22
	// maxWalkers bounds the walkerFree array (real platforms have 1-2).
	maxWalkers = 1 << 10
	// maxPWCEntries bounds a PWC's capacity; the PWC's uint16 recency links
	// cannot index past this anyway.
	maxPWCEntries = 1 << 16
)

// MachineState is the whole-machine checkpoint at one trace position. The
// clock and accumulator fields hold *cumulative* values since the start of
// the trace, so an engine seeded from a MachineState finishes a suffix
// replay with exactly the counters a whole-trace replay would produce —
// the telescoping that makes windowed exact replay bit-identical.
type MachineState struct {
	// HasClock marks full-machine (cpu) state; the partial simulator has
	// no clock and leaves it false.
	HasClock bool
	// Now is the runtime clock in cycles; MissRate the miss-frequency EWMA.
	Now      float64
	MissRate float64
	// WalkCycles and Instructions are the cumulative C and instruction
	// counters.
	WalkCycles   uint64
	Instructions uint64
	// Breakdown holds the cpu.Breakdown components in declaration order
	// (Base, TLBHit, WalkStall, WalkQueue, DataStall).
	Breakdown [5]float64
	// WalkerFree is the per-hardware-walker next-free cycle.
	WalkerFree []float64

	// SumTLB and SumHier are the sampled replay's accumulated
	// measurement-window deltas (cpu engine).
	SumTLB  tlb.Counts
	SumHier cache.Stats
	// Metrics is the partial simulator's accumulator in field order
	// (H, M, C, Lookups, WalkRefs).
	Metrics [5]uint64

	// Component state.
	TLB  tlb.State
	Hier cache.HierarchyState
	Walk walker.State
}

// appendU16/32/64 and appendF64 are the fixed-width encode helpers.
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendU64s(b []byte, vs []uint64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, v)
	}
	return b
}

func appendU32s(b []byte, vs []uint32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, v)
	}
	return b
}

func appendPWC(b []byte, p walker.PWCState) []byte {
	b = appendU32(b, uint32(p.Entries))
	b = appendU32(b, uint32(len(p.Keys)))
	for _, k := range p.Keys {
		b = appendU64(b, k)
	}
	for _, v := range p.Prev {
		b = appendU16(b, v)
	}
	for _, v := range p.Next {
		b = appendU16(b, v)
	}
	b = appendU16(b, p.Head)
	b = appendU16(b, p.Tail)
	return b
}

const (
	flagClock         = 1 << 0
	flagWalkerPrivate = 1 << 1
)

// Encode serializes the state in the MOSCKPT01 format under the given key
// and trace position.
func (s *MachineState) Encode(w io.Writer, key string, pos int) (int64, error) {
	if len(key) > maxKeyLen {
		return 0, fmt.Errorf("ckpt: key too long (%d bytes)", len(key))
	}
	if pos < 0 {
		return 0, fmt.Errorf("ckpt: negative position %d", pos)
	}
	b := make([]byte, 0, s.encodedSize(len(key)))
	b = append(b, Magic[:]...)
	b = append(b, Version)
	b = appendU16(b, uint16(len(key)))
	b = append(b, key...)
	b = appendU64(b, uint64(pos))
	var flags byte
	if s.HasClock {
		flags |= flagClock
	}
	if s.Hier.WalkerPrivate != nil {
		flags |= flagWalkerPrivate
	}
	b = append(b, flags)

	// Clock section.
	b = appendF64(b, s.Now)
	b = appendF64(b, s.MissRate)
	b = appendU64(b, s.WalkCycles)
	b = appendU64(b, s.Instructions)
	for _, v := range s.Breakdown {
		b = appendF64(b, v)
	}
	b = appendU32(b, uint32(len(s.WalkerFree)))
	for _, v := range s.WalkerFree {
		b = appendF64(b, v)
	}

	// Accumulator section.
	b = appendU64(b, s.SumTLB.Lookups)
	b = appendU64(b, s.SumTLB.L1Hits)
	b = appendU64(b, s.SumTLB.L2Hits)
	b = appendU64(b, s.SumTLB.Misses)
	b = appendLoadStats(b, s.SumHier)
	for _, v := range s.Metrics {
		b = appendU64(b, v)
	}

	// TLB section.
	b = appendU64s(b, s.TLB.L14K)
	b = appendU64s(b, s.TLB.L12M)
	b = appendU64s(b, s.TLB.L11G)
	b = appendU64s(b, s.TLB.L2)
	b = appendU64s(b, s.TLB.L21G)
	b = appendU64(b, s.TLB.Counts.Lookups)
	b = appendU64(b, s.TLB.Counts.L1Hits)
	b = appendU64(b, s.TLB.Counts.L2Hits)
	b = appendU64(b, s.TLB.Counts.Misses)
	for _, v := range s.TLB.MissBySize {
		b = appendU64(b, v)
	}

	// Hierarchy section.
	b = appendU32s(b, s.Hier.L1.Tags)
	b = appendU32s(b, s.Hier.L2.Tags)
	b = appendU32s(b, s.Hier.L3.Tags)
	if s.Hier.WalkerPrivate != nil {
		b = appendU32s(b, s.Hier.WalkerPrivate.Tags)
	}
	b = appendLoadStats(b, s.Hier.Stats)

	// Walker section.
	b = appendPWC(b, s.Walk.PML4)
	b = appendPWC(b, s.Walk.PDPT)
	b = appendPWC(b, s.Walk.PD)
	b = appendU64(b, s.Walk.Stats.Walks)
	b = appendU64(b, s.Walk.Stats.WalkCycles)
	b = appendU64(b, s.Walk.Stats.EntryLoads)
	b = appendU64(b, s.Walk.Stats.PWCHitPML4)
	b = appendU64(b, s.Walk.Stats.PWCHitPDPT)
	b = appendU64(b, s.Walk.Stats.PWCHitPD)
	b = appendU64(b, s.Walk.Stats.Faults)

	n, err := w.Write(b)
	return int64(n), err
}

func appendLoadStats(b []byte, st cache.Stats) []byte {
	b = appendU64(b, st.L1Loads.Program)
	b = appendU64(b, st.L1Loads.Walker)
	b = appendU64(b, st.L2Loads.Program)
	b = appendU64(b, st.L2Loads.Walker)
	b = appendU64(b, st.L3Loads.Program)
	b = appendU64(b, st.L3Loads.Walker)
	b = appendU64(b, st.DRAMLoads.Program)
	b = appendU64(b, st.DRAMLoads.Walker)
	return b
}

// encodedSize upper-bounds the serialized size so Encode builds the buffer
// in one allocation.
func (s *MachineState) encodedSize(keyLen int) int {
	n := 8 + 1 + 2 + keyLen + 8 + 1 // header
	n += 2*8 + 2*8 + 5*8 + 4 + len(s.WalkerFree)*8
	n += 4*8 + 8*8 + 5*8
	for _, a := range [][]uint64{s.TLB.L14K, s.TLB.L12M, s.TLB.L11G, s.TLB.L2, s.TLB.L21G} {
		n += 4 + len(a)*8
	}
	n += 8 * 8 // tlb counts + missBySize
	n += 3*4 + (len(s.Hier.L1.Tags)+len(s.Hier.L2.Tags)+len(s.Hier.L3.Tags))*4
	if s.Hier.WalkerPrivate != nil {
		n += 4 + len(s.Hier.WalkerPrivate.Tags)*4
	}
	n += 8 * 8 // hier stats
	for _, p := range []walker.PWCState{s.Walk.PML4, s.Walk.PDPT, s.Walk.PD} {
		n += 8 + len(p.Keys)*8 + len(p.Prev)*2 + len(p.Next)*2 + 4
	}
	n += 7 * 8 // walker stats
	return n
}

// countingReader tracks bytes consumed from the underlying reader.
type countingReader struct {
	br   *bufio.Reader
	read int64
}

func (c *countingReader) full(p []byte) error {
	n, err := io.ReadFull(c.br, p)
	c.read += int64(n)
	return err
}

func (c *countingReader) u16() (uint16, error) {
	var b [2]byte
	if err := c.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (c *countingReader) u32() (uint32, error) {
	var b [4]byte
	if err := c.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *countingReader) u64() (uint64, error) {
	var b [8]byte
	if err := c.full(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (c *countingReader) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

func (c *countingReader) u64s(section string) ([]uint64, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxTagArray {
		return nil, fmt.Errorf("ckpt: implausible %s length %d", section, n)
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = c.u64(); err != nil {
			return nil, fmt.Errorf("ckpt: truncated %s: %w", section, err)
		}
	}
	return out, nil
}

func (c *countingReader) u32s(section string) ([]uint32, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > maxTagArray {
		return nil, fmt.Errorf("ckpt: implausible %s length %d", section, n)
	}
	out := make([]uint32, n)
	var b [4]byte
	for i := range out {
		if err := c.full(b[:]); err != nil {
			return nil, fmt.Errorf("ckpt: truncated %s: %w", section, err)
		}
		out[i] = binary.LittleEndian.Uint32(b[:])
	}
	return out, nil
}

func (c *countingReader) pwc(section string) (walker.PWCState, error) {
	var p walker.PWCState
	entries, err := c.u32()
	if err != nil {
		return p, err
	}
	if entries > maxPWCEntries {
		return p, fmt.Errorf("ckpt: implausible %s capacity %d", section, entries)
	}
	n, err := c.u32()
	if err != nil {
		return p, err
	}
	if n > entries {
		return p, fmt.Errorf("ckpt: forged %s fill %d of %d entries", section, n, entries)
	}
	p.Entries = int(entries)
	if n > 0 {
		p.Keys = make([]uint64, n)
		p.Prev = make([]uint16, n)
		p.Next = make([]uint16, n)
		for i := range p.Keys {
			if p.Keys[i], err = c.u64(); err != nil {
				return p, fmt.Errorf("ckpt: truncated %s keys: %w", section, err)
			}
		}
		for i := range p.Prev {
			if p.Prev[i], err = c.u16(); err != nil {
				return p, fmt.Errorf("ckpt: truncated %s links: %w", section, err)
			}
		}
		for i := range p.Next {
			if p.Next[i], err = c.u16(); err != nil {
				return p, fmt.Errorf("ckpt: truncated %s links: %w", section, err)
			}
		}
	}
	if p.Head, err = c.u16(); err != nil {
		return p, err
	}
	if p.Tail, err = c.u16(); err != nil {
		return p, err
	}
	return p, nil
}

func (c *countingReader) loadStats() (cache.Stats, error) {
	var st cache.Stats
	for _, p := range []*uint64{
		&st.L1Loads.Program, &st.L1Loads.Walker,
		&st.L2Loads.Program, &st.L2Loads.Walker,
		&st.L3Loads.Program, &st.L3Loads.Walker,
		&st.DRAMLoads.Program, &st.DRAMLoads.Walker,
	} {
		v, err := c.u64()
		if err != nil {
			return st, err
		}
		*p = v
	}
	return st, nil
}

// Decode deserializes a MOSCKPT01 stream, returning the stored key, trace
// position, and state. It rejects wrong magics, unknown versions, and any
// forged or truncated section.
func Decode(r io.Reader) (key string, pos int, s *MachineState, err error) {
	cr := &countingReader{br: bufio.NewReaderSize(r, 1<<16)}
	var magic [8]byte
	if err := cr.full(magic[:]); err != nil {
		return "", 0, nil, err
	}
	if magic != Magic {
		return "", 0, nil, fmt.Errorf("ckpt: bad magic %q", magic[:])
	}
	var ver [1]byte
	if err := cr.full(ver[:]); err != nil {
		return "", 0, nil, err
	}
	if ver[0] != Version {
		return "", 0, nil, fmt.Errorf("ckpt: unsupported version %q", ver[0])
	}
	keyLen, err := cr.u16()
	if err != nil {
		return "", 0, nil, err
	}
	if int(keyLen) > maxKeyLen {
		return "", 0, nil, fmt.Errorf("ckpt: implausible key length %d", keyLen)
	}
	keyBytes := make([]byte, keyLen)
	if err := cr.full(keyBytes); err != nil {
		return "", 0, nil, err
	}
	key = string(keyBytes)
	upos, err := cr.u64()
	if err != nil {
		return "", 0, nil, err
	}
	if upos > 1<<62 {
		return "", 0, nil, fmt.Errorf("ckpt: implausible position %d", upos)
	}
	pos = int(upos)
	var flags [1]byte
	if err := cr.full(flags[:]); err != nil {
		return "", 0, nil, err
	}

	s = &MachineState{HasClock: flags[0]&flagClock != 0}
	if s.Now, err = cr.f64(); err != nil {
		return "", 0, nil, err
	}
	if s.MissRate, err = cr.f64(); err != nil {
		return "", 0, nil, err
	}
	if s.WalkCycles, err = cr.u64(); err != nil {
		return "", 0, nil, err
	}
	if s.Instructions, err = cr.u64(); err != nil {
		return "", 0, nil, err
	}
	for i := range s.Breakdown {
		if s.Breakdown[i], err = cr.f64(); err != nil {
			return "", 0, nil, err
		}
	}
	nw, err := cr.u32()
	if err != nil {
		return "", 0, nil, err
	}
	if nw > maxWalkers {
		return "", 0, nil, fmt.Errorf("ckpt: implausible walker count %d", nw)
	}
	if nw > 0 {
		s.WalkerFree = make([]float64, nw)
		for i := range s.WalkerFree {
			if s.WalkerFree[i], err = cr.f64(); err != nil {
				return "", 0, nil, err
			}
		}
	}

	for _, p := range []*uint64{&s.SumTLB.Lookups, &s.SumTLB.L1Hits, &s.SumTLB.L2Hits, &s.SumTLB.Misses} {
		if *p, err = cr.u64(); err != nil {
			return "", 0, nil, err
		}
	}
	if s.SumHier, err = cr.loadStats(); err != nil {
		return "", 0, nil, err
	}
	for i := range s.Metrics {
		if s.Metrics[i], err = cr.u64(); err != nil {
			return "", 0, nil, err
		}
	}

	if s.TLB.L14K, err = cr.u64s("TLB L1-4K"); err != nil {
		return "", 0, nil, err
	}
	if s.TLB.L12M, err = cr.u64s("TLB L1-2M"); err != nil {
		return "", 0, nil, err
	}
	if s.TLB.L11G, err = cr.u64s("TLB L1-1G"); err != nil {
		return "", 0, nil, err
	}
	if s.TLB.L2, err = cr.u64s("TLB L2"); err != nil {
		return "", 0, nil, err
	}
	if s.TLB.L21G, err = cr.u64s("TLB L2-1G"); err != nil {
		return "", 0, nil, err
	}
	for _, p := range []*uint64{&s.TLB.Counts.Lookups, &s.TLB.Counts.L1Hits, &s.TLB.Counts.L2Hits, &s.TLB.Counts.Misses} {
		if *p, err = cr.u64(); err != nil {
			return "", 0, nil, err
		}
	}
	for i := range s.TLB.MissBySize {
		if s.TLB.MissBySize[i], err = cr.u64(); err != nil {
			return "", 0, nil, err
		}
	}

	if s.Hier.L1.Tags, err = cr.u32s("L1 tags"); err != nil {
		return "", 0, nil, err
	}
	if s.Hier.L2.Tags, err = cr.u32s("L2 tags"); err != nil {
		return "", 0, nil, err
	}
	if s.Hier.L3.Tags, err = cr.u32s("L3 tags"); err != nil {
		return "", 0, nil, err
	}
	if flags[0]&flagWalkerPrivate != 0 {
		tags, err := cr.u32s("walker-private tags")
		if err != nil {
			return "", 0, nil, err
		}
		s.Hier.WalkerPrivate = &cache.CacheState{Tags: tags}
	}
	if s.Hier.Stats, err = cr.loadStats(); err != nil {
		return "", 0, nil, err
	}

	if s.Walk.PML4, err = cr.pwc("PWC-PML4"); err != nil {
		return "", 0, nil, err
	}
	if s.Walk.PDPT, err = cr.pwc("PWC-PDPT"); err != nil {
		return "", 0, nil, err
	}
	if s.Walk.PD, err = cr.pwc("PWC-PD"); err != nil {
		return "", 0, nil, err
	}
	for _, p := range []*uint64{
		&s.Walk.Stats.Walks, &s.Walk.Stats.WalkCycles, &s.Walk.Stats.EntryLoads,
		&s.Walk.Stats.PWCHitPML4, &s.Walk.Stats.PWCHitPDPT, &s.Walk.Stats.PWCHitPD,
		&s.Walk.Stats.Faults,
	} {
		if *p, err = cr.u64(); err != nil {
			return "", 0, nil, err
		}
	}
	return key, pos, s, nil
}
