package ckpt

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/cache"
	"mosaic/internal/tlb"
	"mosaic/internal/walker"
)

// sampleState builds a representative full-machine state: every section
// populated, including the optional walker-private ablation cache and
// partially-filled PWCs.
func sampleState() *MachineState {
	mkTags64 := func(n int, seed uint64) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = seed + uint64(i)*2654435761
		}
		return out
	}
	mkTags32 := func(n int, seed uint32) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = seed + uint32(i)*2654435761
		}
		return out
	}
	return &MachineState{
		HasClock:     true,
		Now:          123456.789,
		MissRate:     0.00123,
		WalkCycles:   987654,
		Instructions: 13579246,
		Breakdown:    [5]float64{1.5, 2.25, 3.125, 4.0625, 5.03125},
		WalkerFree:   []float64{120000.5, 119999.25},
		SumTLB:       tlb.Counts{Lookups: 1000, L1Hits: 900, L2Hits: 60, Misses: 40},
		SumHier: cache.Stats{
			L1Loads: cache.LoadCounts{Program: 800, Walker: 100},
			L2Loads: cache.LoadCounts{Program: 200, Walker: 50},
			L3Loads: cache.LoadCounts{Program: 90, Walker: 20},
			DRAMLoads: cache.LoadCounts{
				Program: 30, Walker: 10,
			},
		},
		Metrics: [5]uint64{11, 22, 33, 44, 55},
		TLB: tlb.State{
			L14K:       mkTags64(64, 3),
			L12M:       mkTags64(32, 5),
			L11G:       nil, // platform without a 1GB L1 structure
			L2:         mkTags64(1536, 7),
			L21G:       mkTags64(16, 11),
			Counts:     tlb.Counts{Lookups: 5000, L1Hits: 4000, L2Hits: 700, Misses: 300},
			MissBySize: [4]uint64{250, 40, 10, 0},
		},
		Hier: cache.HierarchyState{
			L1:            cache.CacheState{Tags: mkTags32(512, 13)},
			L2:            cache.CacheState{Tags: mkTags32(4096, 17)},
			L3:            cache.CacheState{Tags: mkTags32(16384, 19)},
			WalkerPrivate: &cache.CacheState{Tags: mkTags32(4096, 23)},
			Stats: cache.Stats{
				L1Loads: cache.LoadCounts{Program: 123, Walker: 45},
				L2Loads: cache.LoadCounts{Program: 67, Walker: 8},
				L3Loads: cache.LoadCounts{Program: 9, Walker: 1},
			},
		},
		Walk: walker.State{
			PML4: walker.PWCState{
				Entries: 2,
				Keys:    []uint64{0x1000, 0x2000},
				Prev:    []uint16{1, 0},
				Next:    []uint16{1, 0},
				Head:    0,
				Tail:    1,
			},
			PDPT: walker.PWCState{
				Entries: 4,
				Keys:    []uint64{0x3000},
				Prev:    []uint16{0},
				Next:    []uint16{0},
			},
			PD: walker.PWCState{Entries: 16},
			Stats: walker.Stats{
				Walks: 300, WalkCycles: 9000, EntryLoads: 1200,
				PWCHitPML4: 280, PWCHitPDPT: 250, PWCHitPD: 200, Faults: 0,
			},
		},
	}
}

// encodeState serializes a state to bytes for test manipulation.
func encodeState(t *testing.T, s *MachineState, key string, pos int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.Encode(&buf, key, pos); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleState()
	data := encodeState(t, want, "trace|plat|layout|full|plan", 123456)

	key, pos, got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if key != "trace|plat|layout|full|plan" || pos != 123456 {
		t.Fatalf("key %q pos %d after round trip", key, pos)
	}
	// Re-encode: the format is canonical, so byte equality is the
	// strongest (and float-bit-exact) round-trip check.
	if got2 := encodeState(t, got, key, pos); !bytes.Equal(data, got2) {
		t.Fatal("re-encoded checkpoint differs from original bytes")
	}
	if got.Now != want.Now || got.MissRate != want.MissRate || got.Metrics != want.Metrics {
		t.Fatalf("decoded state %+v", got)
	}
	if got.Hier.WalkerPrivate == nil || len(got.Hier.WalkerPrivate.Tags) != 4096 {
		t.Fatal("walker-private section lost")
	}
	if got.Walk.PML4.Entries != 2 || len(got.Walk.PML4.Keys) != 2 || got.Walk.PD.Entries != 16 {
		t.Fatalf("PWC state %+v", got.Walk)
	}
}

// TestCheckpointNoWalkerPrivate: the optional section must be absent, not
// empty, when the hierarchy has no ablation cache.
func TestCheckpointNoWalkerPrivate(t *testing.T) {
	s := sampleState()
	s.Hier.WalkerPrivate = nil
	data := encodeState(t, s, "k", 0)
	_, _, got, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hier.WalkerPrivate != nil {
		t.Fatal("decoded a walker-private section that was never written")
	}
}

func TestCheckpointRejectsWrongVersion(t *testing.T) {
	data := encodeState(t, sampleState(), "k", 1)
	data[8] = '2' // version byte: "MOSCKPT02"
	if _, _, _, err := Decode(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong-version decode error = %v", err)
	}
	data[0] = 'X'
	if _, _, _, err := Decode(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad-magic decode error = %v", err)
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	data := encodeState(t, sampleState(), "some-key", 99)
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		n := int(float64(len(data)) * frac)
		if _, _, _, err := Decode(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", n, len(data))
		}
	}
}

func TestCheckpointRejectsForgedLengths(t *testing.T) {
	s := sampleState()
	if _, err := s.Encode(&bytes.Buffer{}, strings.Repeat("k", maxKeyLen+1), 0); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := s.Encode(&bytes.Buffer{}, "k", -1); err == nil {
		t.Error("negative position accepted")
	}
	// Forge an implausible tag-array length in the first TLB section. Its
	// offset is fixed by the layout: header (8 magic + 1 version + 2 keyLen
	// + 1 key + 8 pos + 1 flags = 21), clock section (4×8 scalars + 5×8
	// breakdown + 4 + 2×8 walkerFree = 92), accumulators (4×8 + 8×8 + 5×8
	// = 136).
	data := encodeState(t, s, "k", 0)
	idx := 21 + 92 + 136
	if got := binary.LittleEndian.Uint32(data[idx:]); got != 64 {
		t.Fatalf("L1-4K length prefix not at %d (read %d)", idx, got)
	}
	forged := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(forged[idx:], maxTagArray+1)
	if _, _, _, err := Decode(bytes.NewReader(forged)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("forged tag-array length decode error = %v", err)
	}
}

func TestStoreSaveLoad(t *testing.T) {
	st := &Store{Dir: filepath.Join(t.TempDir(), "ckpts")}
	s := sampleState()

	// Missing file is a cache miss, not an error.
	if got, err := st.Load("k", 5); err != nil || got != nil {
		t.Fatalf("cold load = %v, %v; want nil, nil", got, err)
	}
	if err := st.Save("k", 5, s); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("k", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Now != s.Now || got.Walk.Stats != s.Walk.Stats {
		t.Fatalf("loaded state %+v", got)
	}

	// Atomic write: no temp files left behind, even after overwrites.
	if err := st.Save("k", 5, s); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(st.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("%d files in store, want 1", len(entries))
	}
}

// TestStorePartialFileRegeneration mirrors the trace cache's
// partial-file-recovery contract: a truncated checkpoint (as left by a
// crashed non-atomic writer) must fail the load with an error — the
// caller's signal to regenerate — and a subsequent Save must replace it.
func TestStorePartialFileRegeneration(t *testing.T) {
	st := &Store{Dir: t.TempDir()}
	s := sampleState()
	if err := st.Save("k", 7, s); err != nil {
		t.Fatal(err)
	}
	path := st.Path("k", 7)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("k", 7); err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
	if err := st.Save("k", 7, s); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Load("k", 7); err != nil || got == nil {
		t.Fatalf("reload after regeneration = %v, %v", got, err)
	}
}

// FuzzCheckpointRoundTrip mirrors the trace codec's fuzz target: Decode
// must never panic on arbitrary bytes, and any stream it accepts must
// re-encode canonically (encode → decode → encode is a fixed point).
func FuzzCheckpointRoundTrip(f *testing.F) {
	valid := func() []byte {
		var buf bytes.Buffer
		if _, err := sampleState().Encode(&buf, "fuzz-key", 42); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MOSCKPT0")) // magic only
	wrongVer := append([]byte(nil), valid...)
	wrongVer[8] = '2'
	f.Add(wrongVer)
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.999} {
		f.Add(append([]byte(nil), valid[:int(float64(len(valid))*frac)]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		key, pos, s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := s.Encode(&buf, key, pos); err != nil {
			t.Fatalf("accepted state failed to re-encode: %v", err)
		}
		k2, p2, s2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded state failed to decode: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := s2.Encode(&buf2, k2, p2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}
