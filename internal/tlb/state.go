package tlb

import "fmt"

// Checkpointable state: a TLB's observable behavior is fully determined by
// its structures' tags arrays (contents and recency order share the same
// words — slot 0 MRU) plus the scalar counters. Structures the platform
// does not configure (a nil setAssoc) snapshot as nil slices, and Restore
// demands the same shape back — pairing a checkpoint with a different
// platform's TLB is a caller bug, not something to paper over.

// State is the checkpointed content of a two-level TLB.
type State struct {
	// Per-structure tag arrays; nil where the platform omits the structure
	// (e.g. no dedicated 1GB L2 before Broadwell).
	L14K, L12M, L11G, L2, L21G []uint64
	// Counts are the cumulative scalar counters at the snapshot.
	Counts Counts
	// MissBySize is the per-size-code miss breakdown behind Stats().
	MissBySize [4]uint64
}

// snapshot copies a structure's tags; nil structures snapshot as nil.
func (s *setAssoc) snapshot() []uint64 {
	if s == nil {
		return nil
	}
	return append([]uint64(nil), s.tags...)
}

// restore overwrites a structure's tags with a snapshot of equal shape.
func (s *setAssoc) restore(name string, tags []uint64) error {
	if s == nil {
		if tags != nil {
			return fmt.Errorf("tlb: restore of %s state into a TLB without that structure (platform mismatch?)", name)
		}
		return nil
	}
	if len(tags) != len(s.tags) {
		return fmt.Errorf("tlb: %s: restore of %d tags into %d entries (platform mismatch?)", name, len(tags), len(s.tags))
	}
	copy(s.tags, tags)
	return nil
}

// Snapshot captures the TLB's entries, recency order, and counters.
//
//mosvet:ckptexempt cfg cfg is the immutable platform geometry the TLB was built with; Restore checks entry counts against it instead of overwriting it
func (t *TLB) Snapshot() State {
	return State{
		L14K:       t.l14k.snapshot(),
		L12M:       t.l12m.snapshot(),
		L11G:       t.l11g.snapshot(),
		L2:         t.l2.snapshot(),
		L21G:       t.l21g.snapshot(),
		Counts:     t.Counts(),
		MissBySize: t.missBySize,
	}
}

// Restore overwrites the TLB with a snapshot taken from a TLB of identical
// configuration.
func (t *TLB) Restore(s State) error {
	if err := t.l14k.restore("L1-4K", s.L14K); err != nil {
		return err
	}
	if err := t.l12m.restore("L1-2M", s.L12M); err != nil {
		return err
	}
	if err := t.l11g.restore("L1-1G", s.L11G); err != nil {
		return err
	}
	if err := t.l2.restore("L2", s.L2); err != nil {
		return err
	}
	if err := t.l21g.restore("L2-1G", s.L21G); err != nil {
		return err
	}
	t.stats = Stats{
		Lookups: s.Counts.Lookups,
		L1Hits:  s.Counts.L1Hits,
		L2Hits:  s.Counts.L2Hits,
		Misses:  s.Counts.Misses,
	}
	t.missBySize = s.MissBySize
	return nil
}
