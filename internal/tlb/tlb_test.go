package tlb

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

func TestMissThenHit(t *testing.T) {
	tb := New(arch.SandyBridge.TLB)
	v := mem.Addr(0x12345000)
	if got := tb.Lookup(v, mem.Page4K); got != Miss {
		t.Fatalf("cold lookup = %v, want Miss", got)
	}
	tb.Insert(v, mem.Page4K)
	if got := tb.Lookup(v, mem.Page4K); got != L1Hit {
		t.Fatalf("warm lookup = %v, want L1Hit", got)
	}
	// Same page, different offset.
	if got := tb.Lookup(v+0xfff, mem.Page4K); got != L1Hit {
		t.Fatalf("same-page lookup = %v, want L1Hit", got)
	}
	st := tb.Stats()
	if st.Misses != 1 || st.L1Hits != 2 || st.Lookups != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := arch.SandyBridge.TLB // 64-entry L1, 512-entry L2 for 4KB
	tb := New(cfg)
	// Install 256 translations: all fit in L2, only the last 64ish in L1.
	for i := 0; i < 256; i++ {
		v := mem.Addr(i) << 12
		tb.Lookup(v, mem.Page4K)
		tb.Insert(v, mem.Page4K)
	}
	// Page 0 must have been evicted from L1 but still be in L2.
	if got := tb.Lookup(0, mem.Page4K); got != L2Hit {
		t.Fatalf("lookup after L1 eviction = %v, want L2Hit", got)
	}
	st := tb.Stats()
	if st.L2Hits == 0 {
		t.Error("no H events recorded")
	}
	// The L2 hit refills L1: the next lookup is an L1 hit.
	if got := tb.Lookup(0, mem.Page4K); got != L1Hit {
		t.Fatalf("lookup after L2 refill = %v, want L1Hit", got)
	}
}

// SandyBridge's L2 TLB holds 4KB translations only: a 2MB translation
// evicted from its 32-entry L1 misses outright (Table 4).
func TestSandyBridge2MNotInL2(t *testing.T) {
	tb := New(arch.SandyBridge.TLB)
	for i := 0; i < 64; i++ {
		v := mem.Addr(i) * mem.Addr(mem.Page2M)
		tb.Lookup(v, mem.Page2M)
		tb.Insert(v, mem.Page2M)
	}
	if got := tb.Lookup(0, mem.Page2M); got != Miss {
		t.Fatalf("SandyBridge evicted 2MB lookup = %v, want Miss", got)
	}
}

// Haswell shares its L2 TLB between 4KB and 2MB translations.
func TestHaswell2MSharedL2(t *testing.T) {
	tb := New(arch.Haswell.TLB)
	for i := 0; i < 64; i++ {
		v := mem.Addr(i) * mem.Addr(mem.Page2M)
		tb.Lookup(v, mem.Page2M)
		tb.Insert(v, mem.Page2M)
	}
	if got := tb.Lookup(0, mem.Page2M); got != L2Hit {
		t.Fatalf("Haswell evicted 2MB lookup = %v, want L2Hit", got)
	}
}

// Broadwell has 16 dedicated 1GB L2 entries; SandyBridge has none.
func Test1GEntries(t *testing.T) {
	bdw := New(arch.Broadwell.TLB)
	snb := New(arch.SandyBridge.TLB)
	for i := 0; i < 8; i++ {
		v := mem.Addr(i) * mem.Addr(mem.Page1G)
		for _, tb := range []*TLB{bdw, snb} {
			tb.Lookup(v, mem.Page1G)
			tb.Insert(v, mem.Page1G)
		}
	}
	// Page 0 left the 4-entry L1 on both; only Broadwell's L2 retains it.
	if got := bdw.Lookup(0, mem.Page1G); got != L2Hit {
		t.Errorf("Broadwell 1GB lookup = %v, want L2Hit", got)
	}
	if got := snb.Lookup(0, mem.Page1G); got != Miss {
		t.Errorf("SandyBridge 1GB lookup = %v, want Miss", got)
	}
}

// 4KB and 2MB entries with equal page numbers must not alias in the shared L2.
func TestNoCrossSizeAliasing(t *testing.T) {
	tb := New(arch.Haswell.TLB)
	// VPN 5 as a 4KB page and VPN 5 as a 2MB page are different addresses.
	v4k := mem.Addr(5) << 12
	v2m := mem.Addr(5) * mem.Addr(mem.Page2M)
	tb.Lookup(v4k, mem.Page4K)
	tb.Insert(v4k, mem.Page4K)
	if got := tb.Lookup(v2m, mem.Page2M); got != Miss {
		t.Fatalf("cross-size lookup = %v, want Miss", got)
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// Sweeping far beyond L2 capacity (512) must produce ~100% misses on
	// the second pass too (LRU under a streaming pattern).
	tb := New(arch.SandyBridge.TLB)
	n := 4096
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			v := mem.Addr(i) << 12
			if tb.Lookup(v, mem.Page4K) == Miss {
				tb.Insert(v, mem.Page4K)
			}
		}
	}
	st := tb.Stats()
	if st.Misses < uint64(2*n)*9/10 {
		t.Errorf("streaming sweep: misses = %d of %d lookups", st.Misses, st.Lookups)
	}
	if st.MissBySize[mem.Page4K] != st.Misses {
		t.Errorf("per-size miss accounting inconsistent: %+v", st)
	}
}

func TestWorkingSetWithinL1(t *testing.T) {
	tb := New(arch.SandyBridge.TLB)
	// 32 pages fit the 64-entry L1 easily.
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 32; i++ {
			v := mem.Addr(i) << 12
			if tb.Lookup(v, mem.Page4K) == Miss {
				tb.Insert(v, mem.Page4K)
			}
		}
	}
	st := tb.Stats()
	if st.Misses != 32 {
		t.Errorf("resident set misses = %d, want 32 (cold only)", st.Misses)
	}
	if st.L1Hits != st.Lookups-32 {
		t.Errorf("L1 hits = %d of %d", st.L1Hits, st.Lookups)
	}
}

func TestFlush(t *testing.T) {
	tb := New(arch.Broadwell.TLB)
	tb.Lookup(0x1000, mem.Page4K)
	tb.Insert(0x1000, mem.Page4K)
	tb.Flush()
	if got := tb.Lookup(0x1000, mem.Page4K); got != Miss {
		t.Errorf("post-flush lookup = %v, want Miss", got)
	}
}

func TestOutcomeString(t *testing.T) {
	if L1Hit.String() != "L1Hit" || L2Hit.String() != "L2Hit" || Miss.String() != "Miss" {
		t.Error("outcome names wrong")
	}
	if Outcome(7).String() != "Outcome(7)" {
		t.Error("unknown outcome formatting")
	}
}

func TestSetAssocDegradesToFullyAssociative(t *testing.T) {
	// 16 entries with assoc 12 does not divide: must become fully assoc.
	s := newSetAssoc(16, 12)
	if s.sets != 1 || s.assoc != 16 {
		t.Errorf("degraded structure = %d sets × %d ways", s.sets, s.assoc)
	}
	// Non-power-of-two sets degrade too.
	s = newSetAssoc(24, 4) // 6 sets
	if s.sets != 1 {
		t.Errorf("24/4 should degrade to fully associative, got %d sets", s.sets)
	}
	if newSetAssoc(0, 4) != nil {
		t.Error("zero entries should yield nil structure")
	}
}
