// Package tlb models the two-level TLB of the platforms in the paper's
// Table 4: a per-page-size split L1 TLB and a second-level "STLB" that,
// depending on the microarchitecture, holds 4KB translations only
// (SandyBridge/IvyBridge), shares entries between 4KB and 2MB pages
// (Haswell onward), and may add dedicated 1GB entries (Broadwell onward).
//
// The package reports exactly the events the paper's models consume
// (Table 2): H — translations that missed the L1 TLB but hit the L2 TLB;
// M — translations that missed both and required a page walk.
package tlb

import (
	"fmt"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// Outcome classifies one translation lookup.
type Outcome int

// Lookup outcomes.
const (
	// L1Hit: translated by the first-level TLB, no added latency.
	L1Hit Outcome = iota
	// L2Hit: missed L1, hit the L2 TLB (one "H" event, ~7 cycles).
	L2Hit
	// Miss: missed both levels; a page walk is required (one "M" event).
	Miss
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case L1Hit:
		return "L1Hit"
	case L2Hit:
		return "L2Hit"
	case Miss:
		return "Miss"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// entry is one TLB entry: a tagged virtual page number.
type entry struct {
	tag   uint64
	valid bool
	lru   uint64
}

// setAssoc is a set-associative translation structure with LRU replacement.
type setAssoc struct {
	sets    int
	assoc   int
	setMask uint64
	entries []entry
	tick    uint64
}

// newSetAssoc builds a structure with the given total entries and target
// associativity. If entries do not divide into power-of-two sets of the
// requested ways, the structure degrades to fully associative, which is
// how the small structures (e.g. 4×1GB L1, 16×1GB L2) behave anyway.
func newSetAssoc(entries, assoc int) *setAssoc {
	if entries <= 0 {
		return nil
	}
	if assoc <= 0 || assoc > entries || entries%assoc != 0 {
		return &setAssoc{sets: 1, assoc: entries, entries: make([]entry, entries)}
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		return &setAssoc{sets: 1, assoc: entries, entries: make([]entry, entries)}
	}
	return &setAssoc{
		sets:    sets,
		assoc:   assoc,
		setMask: uint64(sets - 1),
		entries: make([]entry, entries),
	}
}

func (s *setAssoc) lookup(idx, tag uint64) bool {
	if s == nil {
		return false
	}
	set := int(idx & s.setMask)
	base := set * s.assoc
	s.tick++
	for i := 0; i < s.assoc; i++ {
		e := &s.entries[base+i]
		if e.valid && e.tag == tag {
			e.lru = s.tick
			return true
		}
	}
	return false
}

func (s *setAssoc) insert(idx, tag uint64) {
	if s == nil {
		return
	}
	set := int(idx & s.setMask)
	base := set * s.assoc
	s.tick++
	victim := base
	for i := 0; i < s.assoc; i++ {
		e := &s.entries[base+i]
		if e.valid && e.tag == tag {
			e.lru = s.tick
			return
		}
		if !e.valid {
			e.valid = true
			e.tag = tag
			e.lru = s.tick
			return
		}
		if e.lru < s.entries[victim].lru {
			victim = base + i
		}
	}
	s.entries[victim] = entry{tag: tag, valid: true, lru: s.tick}
}

func (s *setAssoc) flush() {
	if s == nil {
		return
	}
	for i := range s.entries {
		s.entries[i] = entry{}
	}
}

// Stats counts translation events per page size plus the aggregates the
// runtime models use.
type Stats struct {
	Lookups uint64
	L1Hits  uint64
	// L2Hits is the paper's H: L1 misses that hit the L2 TLB.
	L2Hits uint64
	// Misses is the paper's M: translations that required a page walk.
	Misses uint64
	// Per-page-size miss breakdown.
	MissBySize map[mem.PageSize]uint64
}

// TLB is one core's two-level TLB.
type TLB struct {
	cfg arch.TLBConfig
	// Split L1, one structure per page size.
	l1 map[mem.PageSize]*setAssoc
	// L2: shared 4K(+2M) structure and optional dedicated 1GB structure.
	l2    *setAssoc
	l21g  *setAssoc
	stats Stats
}

// sizeCode tags shared-structure entries so 4KB and 2MB translations of
// numerically equal page numbers never alias.
func sizeCode(ps mem.PageSize) uint64 {
	switch ps {
	case mem.Page4K:
		return 1
	case mem.Page2M:
		return 2
	case mem.Page1G:
		return 3
	}
	return 0
}

func tagOf(v mem.Addr, ps mem.PageSize) uint64 {
	return mem.PageNumber(v, ps)<<2 | sizeCode(ps)
}

// New builds a TLB from a platform's configuration.
func New(cfg arch.TLBConfig) *TLB {
	t := &TLB{
		cfg: cfg,
		l1: map[mem.PageSize]*setAssoc{
			mem.Page4K: newSetAssoc(cfg.L1Entries4K, cfg.L1Assoc),
			mem.Page2M: newSetAssoc(cfg.L1Entries2M, cfg.L1Assoc),
			mem.Page1G: newSetAssoc(cfg.L1Entries1G, cfg.L1Assoc),
		},
		l2: newSetAssoc(cfg.L2Entries4K, cfg.L2Assoc),
	}
	if cfg.L2Entries1G > 0 {
		t.l21g = newSetAssoc(cfg.L2Entries1G, cfg.L2Assoc)
	}
	t.stats.MissBySize = make(map[mem.PageSize]uint64, 3)
	return t
}

// l2Holds reports whether the L2 TLB caches translations of this size.
func (t *TLB) l2Holds(ps mem.PageSize) bool {
	switch ps {
	case mem.Page4K:
		return t.l2 != nil
	case mem.Page2M:
		return t.cfg.L2Shared2M && t.l2 != nil
	case mem.Page1G:
		return t.l21g != nil
	}
	return false
}

// Lookup translates one access to a page of the given size. On an L2 hit
// the translation is refilled into the L1. On a miss the caller performs a
// page walk and must call Insert with the walk's result.
func (t *TLB) Lookup(v mem.Addr, ps mem.PageSize) Outcome {
	t.stats.Lookups++
	vpn := mem.PageNumber(v, ps)
	tag := tagOf(v, ps)
	if t.l1[ps].lookup(vpn, tag) {
		t.stats.L1Hits++
		return L1Hit
	}
	if t.l2Holds(ps) {
		l2 := t.l2
		if ps == mem.Page1G {
			l2 = t.l21g
		}
		if l2.lookup(vpn, tag) {
			t.stats.L2Hits++
			t.l1[ps].insert(vpn, tag)
			return L2Hit
		}
	}
	t.stats.Misses++
	t.stats.MissBySize[ps]++
	return Miss
}

// Insert installs a completed walk's translation into the L1 and (where
// supported) the L2.
func (t *TLB) Insert(v mem.Addr, ps mem.PageSize) {
	vpn := mem.PageNumber(v, ps)
	tag := tagOf(v, ps)
	t.l1[ps].insert(vpn, tag)
	if t.l2Holds(ps) {
		if ps == mem.Page1G {
			t.l21g.insert(vpn, tag)
		} else {
			t.l2.insert(vpn, tag)
		}
	}
}

// Flush empties both levels (counters are kept).
func (t *TLB) Flush() {
	for _, s := range t.l1 {
		s.flush()
	}
	t.l2.flush()
	t.l21g.flush()
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats {
	out := t.stats
	out.MissBySize = make(map[mem.PageSize]uint64, len(t.stats.MissBySize))
	for k, v := range t.stats.MissBySize {
		out.MissBySize[k] = v
	}
	return out
}
