// Package tlb models the two-level TLB of the platforms in the paper's
// Table 4: a per-page-size split L1 TLB and a second-level "STLB" that,
// depending on the microarchitecture, holds 4KB translations only
// (SandyBridge/IvyBridge), shares entries between 4KB and 2MB pages
// (Haswell onward), and may add dedicated 1GB entries (Broadwell onward).
//
// The package reports exactly the events the paper's models consume
// (Table 2): H — translations that missed the L1 TLB but hit the L2 TLB;
// M — translations that missed both and required a page walk.
package tlb

import (
	"fmt"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// Outcome classifies one translation lookup.
type Outcome int

// Lookup outcomes.
const (
	// L1Hit: translated by the first-level TLB, no added latency.
	L1Hit Outcome = iota
	// L2Hit: missed L1, hit the L2 TLB (one "H" event, ~7 cycles).
	L2Hit
	// Miss: missed both levels; a page walk is required (one "M" event).
	Miss
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case L1Hit:
		return "L1Hit"
	case L2Hit:
		return "L2Hit"
	case Miss:
		return "Miss"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// setAssoc is a set-associative translation structure with LRU replacement.
// A tag of 0 marks an invalid entry (real tags are never 0 — tagOf's size
// code occupies the low bits). Each set's tags sit in recency order — slot 0
// MRU, last slot LRU — the same move-to-front scheme as cache.Cache, so a
// hit refreshes recency by shifting the tag to the front of the set and an
// insert victimizes whatever occupies the back. Invalid entries drift to the
// back and are consumed first, and a re-ordered set hits and evicts
// identically to any other exact-LRU bookkeeping.
type setAssoc struct {
	sets    int
	assoc   int
	setMask uint64
	tags    []uint64
}

// newSetAssoc builds a structure with the given total entries and target
// associativity. If entries do not divide into power-of-two sets of the
// requested ways, the structure degrades to fully associative, which is
// how the small structures (e.g. 4×1GB L1, 16×1GB L2) behave anyway.
func newSetAssoc(entries, assoc int) *setAssoc {
	if entries <= 0 {
		return nil
	}
	sets := 1
	if assoc > 0 && assoc <= entries && entries%assoc == 0 && (entries/assoc)&(entries/assoc-1) == 0 {
		sets = entries / assoc
	}
	return &setAssoc{
		sets:    sets,
		assoc:   entries / sets,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, entries),
	}
}

func (s *setAssoc) lookup(idx, tag uint64) bool {
	if s == nil {
		return false
	}
	base := int(idx&s.setMask) * s.assoc
	tags := s.tags[base : base+s.assoc]
	// Slot 0 first: repeated translations of one page are the common case,
	// and an MRU hit needs no re-ordering at all.
	if tags[0] == tag {
		return true
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] == tag {
			for j := i; j > 0; j-- {
				tags[j] = tags[j-1]
			}
			tags[0] = tag
			return true
		}
	}
	return false
}

func (s *setAssoc) insert(idx, tag uint64) {
	if s == nil {
		return
	}
	base := int(idx&s.setMask) * s.assoc
	tags := s.tags[base : base+s.assoc]
	// An insert of a tag the set already holds just refreshes its recency.
	shift := len(tags) - 1
	for i, t := range tags {
		if t == tag {
			shift = i
			break
		}
	}
	copy(tags[1:shift+1], tags[:shift])
	tags[0] = tag
}

func (s *setAssoc) flush() {
	if s == nil {
		return
	}
	for i := range s.tags {
		s.tags[i] = 0
	}
}

// reset restores just-built state; with recency kept in tag order that is
// exactly what flush does.
func (s *setAssoc) reset() {
	s.flush()
}

// Stats counts translation events per page size plus the aggregates the
// runtime models use.
type Stats struct {
	Lookups uint64
	L1Hits  uint64
	// L2Hits is the paper's H: L1 misses that hit the L2 TLB.
	L2Hits uint64
	// Misses is the paper's M: translations that required a page walk.
	Misses uint64
	// Per-page-size miss breakdown.
	MissBySize map[mem.PageSize]uint64
}

// Counts is the scalar subset of Stats (no per-size map) — cheap enough
// for a sampled replay to snapshot at every measurement-window boundary.
type Counts struct {
	Lookups uint64
	L1Hits  uint64
	L2Hits  uint64
	Misses  uint64
}

// Sub returns the events accumulated since the earlier snapshot o.
func (c Counts) Sub(o Counts) Counts {
	return Counts{
		Lookups: c.Lookups - o.Lookups,
		L1Hits:  c.L1Hits - o.L1Hits,
		L2Hits:  c.L2Hits - o.L2Hits,
		Misses:  c.Misses - o.Misses,
	}
}

// Add sums two count sets.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Lookups: c.Lookups + o.Lookups,
		L1Hits:  c.L1Hits + o.L1Hits,
		L2Hits:  c.L2Hits + o.L2Hits,
		Misses:  c.Misses + o.Misses,
	}
}

// TLB is one core's two-level TLB.
type TLB struct {
	cfg arch.TLBConfig
	// Split L1, one structure per page size.
	l14k, l12m, l11g *setAssoc
	// L2: shared 4K(+2M) structure and optional dedicated 1GB structure.
	l2    *setAssoc
	l21g  *setAssoc
	stats Stats
	// missBySize indexes miss counts by sizeCode; Stats() materializes the
	// public map so the per-miss hot path never touches one.
	missBySize [4]uint64
}

// l1For returns the first-level structure for a page size.
func (t *TLB) l1For(ps mem.PageSize) *setAssoc {
	switch ps {
	case mem.Page4K:
		return t.l14k
	case mem.Page2M:
		return t.l12m
	case mem.Page1G:
		return t.l11g
	}
	return nil
}

// sizeCode tags shared-structure entries so 4KB and 2MB translations of
// numerically equal page numbers never alias.
func sizeCode(ps mem.PageSize) uint64 {
	switch ps {
	case mem.Page4K:
		return 1
	case mem.Page2M:
		return 2
	case mem.Page1G:
		return 3
	}
	return 0
}

func tagOf(v mem.Addr, ps mem.PageSize) uint64 {
	return mem.PageNumber(v, ps)<<2 | sizeCode(ps)
}

// New builds a TLB from a platform's configuration.
func New(cfg arch.TLBConfig) *TLB {
	t := &TLB{
		cfg:  cfg,
		l14k: newSetAssoc(cfg.L1Entries4K, cfg.L1Assoc),
		l12m: newSetAssoc(cfg.L1Entries2M, cfg.L1Assoc),
		l11g: newSetAssoc(cfg.L1Entries1G, cfg.L1Assoc),
		l2:   newSetAssoc(cfg.L2Entries4K, cfg.L2Assoc),
	}
	if cfg.L2Entries1G > 0 {
		t.l21g = newSetAssoc(cfg.L2Entries1G, cfg.L2Assoc)
	}
	return t
}

// l2Holds reports whether the L2 TLB caches translations of this size.
func (t *TLB) l2Holds(ps mem.PageSize) bool {
	switch ps {
	case mem.Page4K:
		return t.l2 != nil
	case mem.Page2M:
		return t.cfg.L2Shared2M && t.l2 != nil
	case mem.Page1G:
		return t.l21g != nil
	}
	return false
}

// Lookup translates one access to a page of the given size. On an L2 hit
// the translation is refilled into the L1. On a miss the caller performs a
// page walk and must call Insert with the walk's result.
func (t *TLB) Lookup(v mem.Addr, ps mem.PageSize) Outcome {
	t.stats.Lookups++
	code := sizeCode(ps)
	vpn := mem.PageNumber(v, ps)
	tag := vpn<<2 | code
	l1 := t.l1For(ps)
	if l1.lookup(vpn, tag) {
		t.stats.L1Hits++
		return L1Hit
	}
	if t.l2Holds(ps) {
		l2 := t.l2
		if ps == mem.Page1G {
			l2 = t.l21g
		}
		if l2.lookup(vpn, tag) {
			t.stats.L2Hits++
			l1.insert(vpn, tag)
			return L2Hit
		}
	}
	t.stats.Misses++
	t.missBySize[code]++
	return Miss
}

// Insert installs a completed walk's translation into the L1 and (where
// supported) the L2.
func (t *TLB) Insert(v mem.Addr, ps mem.PageSize) {
	vpn := mem.PageNumber(v, ps)
	tag := vpn<<2 | sizeCode(ps)
	t.l1For(ps).insert(vpn, tag)
	if t.l2Holds(ps) {
		if ps == mem.Page1G {
			t.l21g.insert(vpn, tag)
		} else {
			t.l2.insert(vpn, tag)
		}
	}
}

// Reset restores the TLB to its just-built state: every entry invalidated,
// recency clocks rewound, counters zeroed. A Reset TLB behaves
// bit-identically to a freshly constructed one, which is what lets the
// simulation engine pool reuse TLBs across replays.
func (t *TLB) Reset() {
	t.l14k.reset()
	t.l12m.reset()
	t.l11g.reset()
	t.l2.reset()
	t.l21g.reset()
	t.stats = Stats{}
	t.missBySize = [4]uint64{}
}

// Flush empties both levels (counters are kept).
func (t *TLB) Flush() {
	t.l14k.flush()
	t.l12m.flush()
	t.l11g.flush()
	t.l2.flush()
	t.l21g.flush()
}

// Counts returns the current scalar counters without materializing the
// per-size map Stats builds.
func (t *TLB) Counts() Counts {
	return Counts{
		Lookups: t.stats.Lookups,
		L1Hits:  t.stats.L1Hits,
		L2Hits:  t.stats.L2Hits,
		Misses:  t.stats.Misses,
	}
}

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats {
	out := t.stats
	out.MissBySize = make(map[mem.PageSize]uint64, 3)
	for _, ps := range []mem.PageSize{mem.Page4K, mem.Page2M, mem.Page1G} {
		if n := t.missBySize[sizeCode(ps)]; n > 0 {
			out.MissBySize[ps] = n
		}
	}
	return out
}
