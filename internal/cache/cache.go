// Package cache models the on-chip data-cache hierarchy (L1d, L2, L3) plus
// DRAM. The page-table walker's loads go through the same hierarchy as
// program loads, so walker activity pollutes the caches and evicts warm
// application data — the mechanism behind the paper's Table 7 observation
// (extra L3 loads under 4KB pages) and the >1 model slopes of Figure 9.
package cache

import (
	"fmt"
	"math/bits"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// Level identifies where an access was served.
type Level int

// Hierarchy levels, in lookup order.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Cache is one set-associative, LRU-replacement cache level indexed and
// tagged by physical address. A lookup scans only the set's tags; recency
// is an exact per-set linked list of way indices, so an insert reads its
// victim straight off the list tail instead of scanning every way's
// last-touch time. Untouched (invalid) ways start at the tail in way
// order, so fills consume way 0, 1, ... first — the same victim sequence
// a timestamp scan with first-index tie-breaking produces.
type Cache struct {
	name     string
	sets     int
	assoc    int
	lineBits uint
	pow2     bool   // sets is a power of two
	setMask  uint64 // sets-1 when pow2
	fastM    uint64 // Lemire fastmod magic otherwise
	// tags holds block number + 1 per line; 0 marks an invalid line.
	tags []uint64
	// prev/next hold each line's recency-list neighbors as way indices
	// (prev is toward the MRU head, next toward the LRU tail); head/tail
	// hold each set's MRU and LRU way. prev[head] and next[tail] are
	// unused.
	prev, next []uint16
	head, tail []uint16
	latency    int
}

// NewCache builds a cache level from its configuration.
func NewCache(name string, cfg arch.CacheConfig) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: bad config for %s: %+v", name, cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: %s line size %d not a power of two", name, cfg.LineBytes)
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		return nil, fmt.Errorf("cache: %s size %d not divisible into %d-way sets of %dB lines",
			name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	if cfg.Assoc > 1<<16 {
		return nil, fmt.Errorf("cache: %s associativity %d exceeds %d ways", name, cfg.Assoc, 1<<16)
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		assoc:    cfg.Assoc,
		lineBits: lineBits,
		tags:     make([]uint64, sets*cfg.Assoc),
		prev:     make([]uint16, sets*cfg.Assoc),
		next:     make([]uint16, sets*cfg.Assoc),
		head:     make([]uint16, sets),
		tail:     make([]uint16, sets),
		latency:  cfg.LatencyCycle,
	}
	if sets&(sets-1) == 0 {
		c.pow2 = true
		c.setMask = uint64(sets - 1)
	} else {
		c.fastM = ^uint64(0)/uint64(sets) + 1
	}
	c.initRecency()
	return c, nil
}

// initRecency orders every set's recency list way assoc-1 (MRU) down to
// way 0 (LRU), so untouched ways are victimized in ascending way order.
func (c *Cache) initRecency() {
	for set := 0; set < c.sets; set++ {
		base := set * c.assoc
		for w := 0; w < c.assoc; w++ {
			if w > 0 {
				c.next[base+w] = uint16(w - 1)
			}
			if w < c.assoc-1 {
				c.prev[base+w] = uint16(w + 1)
			}
		}
		c.head[set] = uint16(c.assoc - 1)
		c.tail[set] = 0
	}
}

// touch moves way i to the MRU head of its set's recency list.
func (c *Cache) touch(base, set, i int) {
	h := int(c.head[set])
	if h == i {
		return
	}
	p := c.prev[base+i]
	if int(c.tail[set]) == i {
		c.tail[set] = p
	} else {
		n := c.next[base+i]
		c.prev[base+int(n)] = p
		c.next[base+int(p)] = n
	}
	c.prev[base+h] = uint16(i)
	c.next[base+i] = uint16(h)
	c.head[set] = uint16(i)
}

// setIndex maps a block number to its set. Real L3 slices are not
// power-of-two counts (e.g. 15MB/20-way = 12288 sets), and a hardware
// divide per probe dominates the scan itself, so non-power-of-two sets use
// Lemire's exact fastmod when the block number fits 32 bits.
func (c *Cache) setIndex(blk uint64) int {
	switch {
	case c.pow2:
		return int(blk & c.setMask)
	case blk <= 0xffffffff:
		hi, _ := bits.Mul64(c.fastM*blk, uint64(c.sets))
		return int(hi)
	default:
		return int(blk % uint64(c.sets))
	}
}

// Lookup probes the cache for the line containing phys; on a hit the line's
// recency is refreshed.
func (c *Cache) Lookup(phys mem.Addr) bool {
	blk := uint64(phys) >> c.lineBits
	set := c.setIndex(blk)
	base := set * c.assoc
	tagv := blk + 1 // full block number as tag (set bits included, harmless)
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i] == tagv {
			c.touch(base, set, i)
			return true
		}
	}
	return false
}

// Insert fills the line containing phys, evicting the set's LRU victim.
// It returns the evicted block's physical address and whether a valid
// line was evicted.
func (c *Cache) Insert(phys mem.Addr) (mem.Addr, bool) {
	blk := uint64(phys) >> c.lineBits
	set := c.setIndex(blk)
	base := set * c.assoc
	victim := int(c.tail[set])
	old := c.tags[base+victim]
	c.tags[base+victim] = blk + 1
	c.touch(base, set, victim)
	if old == 0 {
		return 0, false
	}
	return mem.Addr((old - 1) << c.lineBits), true
}

// Latency returns the level's hit latency in cycles.
func (c *Cache) Latency() int { return c.latency }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity (for tests).
func (c *Cache) Assoc() int { return c.assoc }

// Flush invalidates every line and restores the initial recency order.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.initRecency()
}

// Reset restores the just-built state: a Reset cache behaves
// bit-identically to a freshly constructed one.
func (c *Cache) Reset() {
	c.Flush()
}

// LoadCounts splits per-level load counts by requester, mirroring the
// program/walker breakdown of the paper's Table 7.
type LoadCounts struct {
	Program uint64
	Walker  uint64
}

// Total returns program + walker loads.
func (lc LoadCounts) Total() uint64 { return lc.Program + lc.Walker }

// Stats aggregates hierarchy counters.
type Stats struct {
	// Loads that reached each level (L1d loads = all loads; L2 loads =
	// L1 misses; L3 loads = L2 misses; DRAM = L3 misses), split by
	// requester as in Table 7.
	L1Loads   LoadCounts
	L2Loads   LoadCounts
	L3Loads   LoadCounts
	DRAMLoads LoadCounts
}

// Hierarchy is the three-level cache plus DRAM. All levels are mostly-
// inclusive: a fill inserts into every level, as on the modelled Intel
// parts (pre-Skylake-SP inclusive L3).
type Hierarchy struct {
	l1, l2, l3 *Cache
	dramLat    int
	stats      Stats
	// walkerPrivate, when non-nil, gives the walker a private cache: its
	// loads no longer touch the shared hierarchy at all — an ablation knob
	// that removes cache pollution while preserving walker locality
	// (DESIGN.md decision 1).
	walkerPrivate *Cache
}

// NewHierarchy builds the hierarchy for a platform.
func NewHierarchy(p arch.Platform) (*Hierarchy, error) {
	l1, err := NewCache("L1d", p.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", p.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache("L3", p.L3)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{l1: l1, l2: l2, l3: l3, dramLat: p.DRAMLat}, nil
}

// SetWalkerPrivate toggles the no-pollution ablation: walker loads are
// served by a private L2-sized cache instead of the shared hierarchy, so
// they neither evict program data nor benefit from it.
func (h *Hierarchy) SetWalkerPrivate(p arch.Platform) error {
	c, err := NewCache("walker-private", p.L2)
	if err != nil {
		return err
	}
	h.walkerPrivate = c
	return nil
}

// Access performs one load of the line containing phys, returning the
// serving level and the access latency in cycles. walker marks page-table
// walker loads, which are counted separately and — crucially — install
// lines in every level just like program loads do, producing the cache
// pollution the paper measures.
func (h *Hierarchy) Access(phys mem.Addr, walker bool) (Level, int) {
	if walker {
		if h.walkerPrivate != nil {
			h.stats.L1Loads.Walker++
			if h.walkerPrivate.Lookup(phys) {
				return LevelL2, h.walkerPrivate.Latency()
			}
			h.stats.DRAMLoads.Walker++
			h.walkerPrivate.Insert(phys)
			return LevelDRAM, h.dramLat
		}
		h.stats.L1Loads.Walker++
		if h.l1.Lookup(phys) {
			return LevelL1, h.l1.Latency()
		}
		h.stats.L2Loads.Walker++
		if h.l2.Lookup(phys) {
			h.l1.Insert(phys)
			return LevelL2, h.l2.Latency()
		}
		h.stats.L3Loads.Walker++
		if h.l3.Lookup(phys) {
			h.l1.Insert(phys)
			h.l2.Insert(phys)
			return LevelL3, h.l3.Latency()
		}
		h.stats.DRAMLoads.Walker++
	} else {
		h.stats.L1Loads.Program++
		if h.l1.Lookup(phys) {
			return LevelL1, h.l1.Latency()
		}
		h.stats.L2Loads.Program++
		if h.l2.Lookup(phys) {
			h.l1.Insert(phys)
			return LevelL2, h.l2.Latency()
		}
		h.stats.L3Loads.Program++
		if h.l3.Lookup(phys) {
			h.l1.Insert(phys)
			h.l2.Insert(phys)
			return LevelL3, h.l3.Latency()
		}
		h.stats.DRAMLoads.Program++
	}
	h.l1.Insert(phys)
	h.l2.Insert(phys)
	h.l3.Insert(phys)
	return LevelDRAM, h.dramLat
}

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Flush empties all levels and keeps the counters.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.l3.Flush()
}

// Reset restores the hierarchy to its just-built state: all levels emptied
// with recency clocks rewound, counters zeroed, and the walker-private
// ablation cache removed. The set-associative line arrays are retained, so
// pooled engines skip reallocating them on every replay.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.walkerPrivate = nil
	h.stats = Stats{}
}

// DRAMLatency returns the modelled DRAM access latency.
func (h *Hierarchy) DRAMLatency() int { return h.dramLat }
