// Package cache models the on-chip data-cache hierarchy (L1d, L2, L3) plus
// DRAM. The page-table walker's loads go through the same hierarchy as
// program loads, so walker activity pollutes the caches and evicts warm
// application data — the mechanism behind the paper's Table 7 observation
// (extra L3 loads under 4KB pages) and the >1 model slopes of Figure 9.
package cache

import (
	"fmt"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// Level identifies where an access was served.
type Level int

// Hierarchy levels, in lookup order.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// line is one cache line's tag state.
type line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// Cache is one set-associative, LRU-replacement cache level indexed and
// tagged by physical address.
type Cache struct {
	name     string
	sets     int
	assoc    int
	lineBits uint
	lines    []line // sets*assoc, set-major
	tick     uint64
	latency  int
}

// NewCache builds a cache level from its configuration.
func NewCache(name string, cfg arch.CacheConfig) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: bad config for %s: %+v", name, cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: %s line size %d not a power of two", name, cfg.LineBytes)
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		return nil, fmt.Errorf("cache: %s size %d not divisible into %d-way sets of %dB lines",
			name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	return &Cache{
		name:     name,
		sets:     sets,
		assoc:    cfg.Assoc,
		lineBits: lineBits,
		lines:    make([]line, sets*cfg.Assoc),
		latency:  cfg.LatencyCycle,
	}, nil
}

// Lookup probes the cache for the line containing phys; on a hit the line's
// recency is refreshed.
func (c *Cache) Lookup(phys mem.Addr) bool {
	blk := uint64(phys) >> c.lineBits
	set := int(blk % uint64(c.sets))
	tag := blk // full block number as tag (set bits included, harmless)
	base := set * c.assoc
	c.tick++
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			return true
		}
	}
	return false
}

// Insert fills the line containing phys, evicting the set's LRU victim.
// It returns the evicted block's physical address and whether a valid
// line was evicted.
func (c *Cache) Insert(phys mem.Addr) (mem.Addr, bool) {
	blk := uint64(phys) >> c.lineBits
	set := int(blk % uint64(c.sets))
	base := set * c.assoc
	c.tick++
	victim := base
	for i := 0; i < c.assoc; i++ {
		l := &c.lines[base+i]
		if !l.valid {
			l.valid = true
			l.tag = blk
			l.lru = c.tick
			return 0, false
		}
		if l.lru < c.lines[victim].lru {
			victim = base + i
		}
	}
	v := &c.lines[victim]
	old := mem.Addr(v.tag << c.lineBits)
	v.tag = blk
	v.lru = c.tick
	return old, true
}

// Latency returns the level's hit latency in cycles.
func (c *Cache) Latency() int { return c.latency }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity (for tests).
func (c *Cache) Assoc() int { return c.assoc }

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// LoadCounts splits per-level load counts by requester, mirroring the
// program/walker breakdown of the paper's Table 7.
type LoadCounts struct {
	Program uint64
	Walker  uint64
}

// Total returns program + walker loads.
func (lc LoadCounts) Total() uint64 { return lc.Program + lc.Walker }

// Stats aggregates hierarchy counters.
type Stats struct {
	// Loads that reached each level (L1d loads = all loads; L2 loads =
	// L1 misses; L3 loads = L2 misses; DRAM = L3 misses), split by
	// requester as in Table 7.
	L1Loads   LoadCounts
	L2Loads   LoadCounts
	L3Loads   LoadCounts
	DRAMLoads LoadCounts
}

// Hierarchy is the three-level cache plus DRAM. All levels are mostly-
// inclusive: a fill inserts into every level, as on the modelled Intel
// parts (pre-Skylake-SP inclusive L3).
type Hierarchy struct {
	l1, l2, l3 *Cache
	dramLat    int
	stats      Stats
	// walkerPrivate, when non-nil, gives the walker a private cache: its
	// loads no longer touch the shared hierarchy at all — an ablation knob
	// that removes cache pollution while preserving walker locality
	// (DESIGN.md decision 1).
	walkerPrivate *Cache
}

// NewHierarchy builds the hierarchy for a platform.
func NewHierarchy(p arch.Platform) (*Hierarchy, error) {
	l1, err := NewCache("L1d", p.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", p.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache("L3", p.L3)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{l1: l1, l2: l2, l3: l3, dramLat: p.DRAMLat}, nil
}

// SetWalkerPrivate toggles the no-pollution ablation: walker loads are
// served by a private L2-sized cache instead of the shared hierarchy, so
// they neither evict program data nor benefit from it.
func (h *Hierarchy) SetWalkerPrivate(p arch.Platform) error {
	c, err := NewCache("walker-private", p.L2)
	if err != nil {
		return err
	}
	h.walkerPrivate = c
	return nil
}

// Access performs one load of the line containing phys, returning the
// serving level and the access latency in cycles. walker marks page-table
// walker loads, which are counted separately and — crucially — install
// lines in every level just like program loads do, producing the cache
// pollution the paper measures.
func (h *Hierarchy) Access(phys mem.Addr, walker bool) (Level, int) {
	count := func(lc *LoadCounts) {
		if walker {
			lc.Walker++
		} else {
			lc.Program++
		}
	}
	if walker && h.walkerPrivate != nil {
		count(&h.stats.L1Loads)
		if h.walkerPrivate.Lookup(phys) {
			return LevelL2, h.walkerPrivate.Latency()
		}
		count(&h.stats.DRAMLoads)
		h.walkerPrivate.Insert(phys)
		return LevelDRAM, h.dramLat
	}
	count(&h.stats.L1Loads)
	if h.l1.Lookup(phys) {
		return LevelL1, h.l1.Latency()
	}
	count(&h.stats.L2Loads)
	if h.l2.Lookup(phys) {
		h.l1.Insert(phys)
		return LevelL2, h.l2.Latency()
	}
	count(&h.stats.L3Loads)
	if h.l3.Lookup(phys) {
		h.l1.Insert(phys)
		h.l2.Insert(phys)
		return LevelL3, h.l3.Latency()
	}
	count(&h.stats.DRAMLoads)
	h.l1.Insert(phys)
	h.l2.Insert(phys)
	h.l3.Insert(phys)
	return LevelDRAM, h.dramLat
}

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Flush empties all levels and keeps the counters.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.l3.Flush()
}

// DRAMLatency returns the modelled DRAM access latency.
func (h *Hierarchy) DRAMLatency() int { return h.dramLat }
