// Package cache models the on-chip data-cache hierarchy (L1d, L2, L3) plus
// DRAM. The page-table walker's loads go through the same hierarchy as
// program loads, so walker activity pollutes the caches and evicts warm
// application data — the mechanism behind the paper's Table 7 observation
// (extra L3 loads under 4KB pages) and the >1 model slopes of Figure 9.
package cache

import (
	"fmt"
	"math/bits"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

// Level identifies where an access was served.
type Level int

// Hierarchy levels, in lookup order.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAM
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Cache is one set-associative, LRU-replacement cache level indexed and
// tagged by physical address. Each set's tags are kept in recency order —
// slot 0 is the MRU line, the last slot the LRU victim — so recency is
// maintained by moving a hit tag to the front of its set (a ≤76-byte copy
// within the lines the probe already streamed) instead of updating side
// arrays. Invalid lines drift to the back and are victimized first, and a
// re-ordered set hits and evicts identically to any other exact-LRU
// bookkeeping.
type Cache struct {
	name     string
	sets     int
	assoc    int
	lineBits uint
	pow2     bool   // sets is a power of two
	setMask  uint64 // sets-1 when pow2
	fastM    uint64 // Lemire fastmod magic otherwise
	// tags holds block number + 1 per line; 0 marks an invalid line. Tags
	// are 32-bit: modelled physical memory tops out at 64GB (2^36) and
	// lines are ≥64B, so block numbers need at most 30 bits — and halving
	// the tag width halves the bytes every probe streams through the set.
	// Insert enforces the width, so an out-of-range address fails loudly
	// rather than aliasing.
	tags    []uint32
	latency int
}

// NewCache builds a cache level from its configuration.
func NewCache(name string, cfg arch.CacheConfig) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: bad config for %s: %+v", name, cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: %s line size %d not a power of two", name, cfg.LineBytes)
	}
	if cfg.SizeBytes%(cfg.LineBytes*cfg.Assoc) != 0 {
		return nil, fmt.Errorf("cache: %s size %d not divisible into %d-way sets of %dB lines",
			name, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	if cfg.Assoc > 1<<16 {
		return nil, fmt.Errorf("cache: %s associativity %d exceeds %d ways", name, cfg.Assoc, 1<<16)
	}
	c := &Cache{
		name:     name,
		sets:     sets,
		assoc:    cfg.Assoc,
		lineBits: lineBits,
		tags:     make([]uint32, sets*cfg.Assoc),
		latency:  cfg.LatencyCycle,
	}
	if sets&(sets-1) == 0 {
		c.pow2 = true
		c.setMask = uint64(sets - 1)
	} else {
		c.fastM = ^uint64(0)/uint64(sets) + 1
	}
	return c, nil
}

// setIndex maps a block number to its set. Real L3 slices are not
// power-of-two counts (e.g. 15MB/20-way = 12288 sets), and a hardware
// divide per probe dominates the scan itself, so non-power-of-two sets use
// Lemire's exact fastmod when the block number fits 32 bits.
func (c *Cache) setIndex(blk uint64) int {
	switch {
	case c.pow2:
		return int(blk & c.setMask)
	case blk <= 0xffffffff:
		hi, _ := bits.Mul64(c.fastM*blk, uint64(c.sets))
		return int(hi)
	default:
		return int(blk % uint64(c.sets))
	}
}

// Lookup probes the cache for the line containing phys; on a hit the line's
// recency is refreshed by moving its tag to the set's MRU slot.
func (c *Cache) Lookup(phys mem.Addr) bool {
	return c.lookupB(uint64(phys) >> c.lineBits)
}

// lookupB is Lookup on a pre-shifted block number — the hierarchy computes
// the block once per access and probes every level with it.
func (c *Cache) lookupB(blk uint64) bool {
	set := c.setIndex(blk)
	base := set * c.assoc
	tagv := uint32(blk) + 1 // full block number as tag (set bits included, harmless)
	tags := c.tags[base : base+c.assoc]
	// Slot 0 first: repeated touches of a hot line are the common case,
	// and an MRU hit needs no re-ordering at all.
	if tags[0] == tagv {
		return true
	}
	for i := 1; i < len(tags); i++ {
		if tags[i] == tagv {
			// Shift by hand: the move is 1–19 words, far below the size
			// where a memmove call beats a simple backward loop.
			for j := i; j > 0; j-- {
				tags[j] = tags[j-1]
			}
			tags[0] = tagv
			return true
		}
	}
	return false
}

// Insert fills the line containing phys, evicting the set's LRU victim
// (which simply falls off the back of the set — the model has no writeback
// traffic, so nobody needs the victim's identity). The caller guarantees
// the line is not already present: Hierarchy.Access only inserts into
// levels whose lookup just missed.
func (c *Cache) Insert(phys mem.Addr) {
	c.insertB(uint64(phys) >> c.lineBits)
}

// insertB is Insert on a pre-shifted block number.
func (c *Cache) insertB(blk uint64) {
	if blk >= 1<<32-1 {
		panic(fmt.Sprintf("cache: %s: block %#x exceeds the 32-bit tag width", c.name, blk))
	}
	set := c.setIndex(blk)
	base := set * c.assoc
	tags := c.tags[base : base+c.assoc]
	copy(tags[1:], tags[:len(tags)-1])
	tags[0] = uint32(blk) + 1
}

// Latency returns the level's hit latency in cycles.
func (c *Cache) Latency() int { return c.latency }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity (for tests).
func (c *Cache) Assoc() int { return c.assoc }

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
	}
}

// Reset restores the just-built state: a Reset cache behaves
// bit-identically to a freshly constructed one.
func (c *Cache) Reset() {
	c.Flush()
}

// LoadCounts splits per-level load counts by requester, mirroring the
// program/walker breakdown of the paper's Table 7.
type LoadCounts struct {
	Program uint64
	Walker  uint64
}

// Total returns program + walker loads.
func (lc LoadCounts) Total() uint64 { return lc.Program + lc.Walker }

// Sub returns the loads accumulated since the earlier snapshot o.
func (lc LoadCounts) Sub(o LoadCounts) LoadCounts {
	return LoadCounts{Program: lc.Program - o.Program, Walker: lc.Walker - o.Walker}
}

// Add sums two load counts.
func (lc LoadCounts) Add(o LoadCounts) LoadCounts {
	return LoadCounts{Program: lc.Program + o.Program, Walker: lc.Walker + o.Walker}
}

// Stats aggregates hierarchy counters.
type Stats struct {
	// Loads that reached each level (L1d loads = all loads; L2 loads =
	// L1 misses; L3 loads = L2 misses; DRAM = L3 misses), split by
	// requester as in Table 7.
	L1Loads   LoadCounts
	L2Loads   LoadCounts
	L3Loads   LoadCounts
	DRAMLoads LoadCounts
}

// Sub returns the loads accumulated since the earlier snapshot o — the
// window-differencing primitive of sampled replays, which attribute load
// counts to measurement windows by snapshotting cumulative stats at the
// window boundaries.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		L1Loads:   s.L1Loads.Sub(o.L1Loads),
		L2Loads:   s.L2Loads.Sub(o.L2Loads),
		L3Loads:   s.L3Loads.Sub(o.L3Loads),
		DRAMLoads: s.DRAMLoads.Sub(o.DRAMLoads),
	}
}

// Add sums two stat sets.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		L1Loads:   s.L1Loads.Add(o.L1Loads),
		L2Loads:   s.L2Loads.Add(o.L2Loads),
		L3Loads:   s.L3Loads.Add(o.L3Loads),
		DRAMLoads: s.DRAMLoads.Add(o.DRAMLoads),
	}
}

// Hierarchy is the three-level cache plus DRAM. All levels are mostly-
// inclusive: a fill inserts into every level, as on the modelled Intel
// parts (pre-Skylake-SP inclusive L3).
type Hierarchy struct {
	l1, l2, l3 *Cache
	// lineBits is the levels' shared line shift: every modelled platform
	// uses 64B lines at all levels, so Access shifts the address into a
	// block number once and probes each level with it. uniform guards the
	// (hypothetical) mixed-line-size configuration, which falls back to
	// per-level shifting.
	lineBits uint
	uniform  bool
	dramLat  int
	stats    Stats
	// walkerPrivate, when non-nil, gives the walker a private cache: its
	// loads no longer touch the shared hierarchy at all — an ablation knob
	// that removes cache pollution while preserving walker locality
	// (DESIGN.md decision 1).
	walkerPrivate *Cache
}

// NewHierarchy builds the hierarchy for a platform.
func NewHierarchy(p arch.Platform) (*Hierarchy, error) {
	l1, err := NewCache("L1d", p.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", p.L2)
	if err != nil {
		return nil, err
	}
	l3, err := NewCache("L3", p.L3)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		l1: l1, l2: l2, l3: l3,
		lineBits: l1.lineBits,
		uniform:  l1.lineBits == l2.lineBits && l2.lineBits == l3.lineBits,
		dramLat:  p.DRAMLat,
	}, nil
}

// SetWalkerPrivate toggles the no-pollution ablation: walker loads are
// served by a private L2-sized cache instead of the shared hierarchy, so
// they neither evict program data nor benefit from it.
func (h *Hierarchy) SetWalkerPrivate(p arch.Platform) error {
	c, err := NewCache("walker-private", p.L2)
	if err != nil {
		return err
	}
	h.walkerPrivate = c
	return nil
}

// Access performs one load of the line containing phys, returning the
// serving level and the access latency in cycles. walker marks page-table
// walker loads, which are counted separately and — crucially — install
// lines in every level just like program loads do, producing the cache
// pollution the paper measures.
//
//mosvet:hotpath
func (h *Hierarchy) Access(phys mem.Addr, walker bool) (Level, int) {
	if walker && h.walkerPrivate != nil {
		h.stats.L1Loads.Walker++
		if h.walkerPrivate.Lookup(phys) {
			return LevelL2, h.walkerPrivate.latency
		}
		h.stats.DRAMLoads.Walker++
		h.walkerPrivate.Insert(phys)
		return LevelDRAM, h.dramLat
	}
	if !h.uniform {
		return h.accessSlow(phys, walker)
	}
	blk := uint64(phys) >> h.lineBits
	if walker {
		h.stats.L1Loads.Walker++
		if h.l1.lookupB(blk) {
			return LevelL1, h.l1.latency
		}
		h.stats.L2Loads.Walker++
		if h.l2.lookupB(blk) {
			h.l1.insertB(blk)
			return LevelL2, h.l2.latency
		}
		h.stats.L3Loads.Walker++
		if h.l3.lookupB(blk) {
			h.l1.insertB(blk)
			h.l2.insertB(blk)
			return LevelL3, h.l3.latency
		}
		h.stats.DRAMLoads.Walker++
	} else {
		h.stats.L1Loads.Program++
		if h.l1.lookupB(blk) {
			return LevelL1, h.l1.latency
		}
		h.stats.L2Loads.Program++
		if h.l2.lookupB(blk) {
			h.l1.insertB(blk)
			return LevelL2, h.l2.latency
		}
		h.stats.L3Loads.Program++
		if h.l3.lookupB(blk) {
			h.l1.insertB(blk)
			h.l2.insertB(blk)
			return LevelL3, h.l3.latency
		}
		h.stats.DRAMLoads.Program++
	}
	h.l1.insertB(blk)
	h.l2.insertB(blk)
	h.l3.insertB(blk)
	return LevelDRAM, h.dramLat
}

// accessSlow handles hierarchies whose levels disagree on line size (no
// modelled platform does): each level shifts the address itself.
func (h *Hierarchy) accessSlow(phys mem.Addr, walker bool) (Level, int) {
	if walker {
		h.stats.L1Loads.Walker++
		if h.l1.Lookup(phys) {
			return LevelL1, h.l1.latency
		}
		h.stats.L2Loads.Walker++
		if h.l2.Lookup(phys) {
			h.l1.Insert(phys)
			return LevelL2, h.l2.latency
		}
		h.stats.L3Loads.Walker++
		if h.l3.Lookup(phys) {
			h.l1.Insert(phys)
			h.l2.Insert(phys)
			return LevelL3, h.l3.latency
		}
		h.stats.DRAMLoads.Walker++
	} else {
		h.stats.L1Loads.Program++
		if h.l1.Lookup(phys) {
			return LevelL1, h.l1.latency
		}
		h.stats.L2Loads.Program++
		if h.l2.Lookup(phys) {
			h.l1.Insert(phys)
			return LevelL2, h.l2.latency
		}
		h.stats.L3Loads.Program++
		if h.l3.Lookup(phys) {
			h.l1.Insert(phys)
			h.l2.Insert(phys)
			return LevelL3, h.l3.latency
		}
		h.stats.DRAMLoads.Program++
	}
	h.l1.Insert(phys)
	h.l2.Insert(phys)
	h.l3.Insert(phys)
	return LevelDRAM, h.dramLat
}

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Flush empties all levels and keeps the counters.
func (h *Hierarchy) Flush() {
	h.l1.Flush()
	h.l2.Flush()
	h.l3.Flush()
}

// Reset restores the hierarchy to its just-built state: all levels emptied
// with recency clocks rewound, counters zeroed, and the walker-private
// ablation cache removed. The set-associative line arrays are retained, so
// pooled engines skip reallocating them on every replay.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	h.walkerPrivate = nil
	h.stats = Stats{}
}

// DRAMLatency returns the modelled DRAM access latency.
func (h *Hierarchy) DRAMLatency() int { return h.dramLat }
