package cache

import (
	"math/rand"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/mem"
)

func small() arch.CacheConfig {
	return arch.CacheConfig{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 4, LatencyCycle: 4}
}

func TestCacheHitAfterInsert(t *testing.T) {
	c, err := NewCache("t", small())
	if err != nil {
		t.Fatal(err)
	}
	if c.Lookup(0x1000) {
		t.Error("cold cache should miss")
	}
	c.Insert(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("inserted line should hit")
	}
	// Same line, different byte.
	if !c.Lookup(0x103f) {
		t.Error("same-line offset should hit")
	}
	if c.Lookup(0x1040) {
		t.Error("next line should miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewCache("t", small())
	sets := c.Sets()
	// Fill one set beyond capacity; the first-inserted line is evicted.
	stride := mem.Addr(sets * 64)
	for i := 0; i <= c.Assoc(); i++ {
		c.Insert(mem.Addr(i) * stride)
	}
	if c.Lookup(0) {
		t.Error("LRU victim should have been evicted")
	}
	if !c.Lookup(stride) {
		t.Error("second-inserted line should survive")
	}
}

func TestCacheLRUTouchPreventsEviction(t *testing.T) {
	c, _ := NewCache("t", small())
	stride := mem.Addr(c.Sets() * 64)
	for i := 0; i < c.Assoc(); i++ {
		c.Insert(mem.Addr(i) * stride)
	}
	c.Lookup(0) // refresh line 0
	c.Insert(mem.Addr(c.Assoc()) * stride)
	if !c.Lookup(0) {
		t.Error("recently touched line should survive")
	}
	if c.Lookup(stride) {
		t.Error("the now-LRU line should have been evicted")
	}
}

func TestCacheConfigErrors(t *testing.T) {
	for _, cfg := range []arch.CacheConfig{
		{},
		{SizeBytes: 4096, LineBytes: 63, Assoc: 4},
		{SizeBytes: 5000, LineBytes: 64, Assoc: 4},
	} {
		if _, err := NewCache("bad", cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(arch.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	// Cold access: DRAM.
	lvl, lat := h.Access(0x100000, false)
	if lvl != LevelDRAM || lat != arch.SandyBridge.DRAMLat {
		t.Errorf("cold access: %v/%d", lvl, lat)
	}
	// Hot access: L1.
	lvl, lat = h.Access(0x100000, false)
	if lvl != LevelL1 || lat != arch.SandyBridge.L1D.LatencyCycle {
		t.Errorf("hot access: %v/%d", lvl, lat)
	}
	st := h.Stats()
	if st.L1Loads.Program != 2 || st.DRAMLoads.Program != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHierarchyWalkerSplit(t *testing.T) {
	h, _ := NewHierarchy(arch.SandyBridge)
	h.Access(0x1000, false)
	h.Access(0x2000, true)
	h.Access(0x3000, true)
	st := h.Stats()
	if st.L1Loads.Program != 1 || st.L1Loads.Walker != 2 {
		t.Errorf("program/walker split = %d/%d, want 1/2", st.L1Loads.Program, st.L1Loads.Walker)
	}
	if st.L1Loads.Total() != 3 {
		t.Errorf("total = %d", st.L1Loads.Total())
	}
}

// Walker fills must be able to evict program data: the pollution mechanism.
func TestWalkerPollutionEvictsProgramData(t *testing.T) {
	h, _ := NewHierarchy(arch.SandyBridge)
	// Warm a program line.
	h.Access(0x4000, false)
	if lvl, _ := h.Access(0x4000, false); lvl != LevelL1 {
		t.Fatal("line should be warm")
	}
	// Hammer the same L1 set with walker loads. L1: 64 sets of 8 ways →
	// set stride is 64*64 bytes.
	stride := mem.Addr(64 * 64)
	for i := 1; i <= 16; i++ {
		h.Access(0x4000+mem.Addr(i)*stride, true)
	}
	if lvl, _ := h.Access(0x4000, false); lvl == LevelL1 {
		t.Error("walker fills should have evicted the program line from L1")
	}
}

func TestFlush(t *testing.T) {
	h, _ := NewHierarchy(arch.SandyBridge)
	h.Access(0x1000, false)
	h.Flush()
	if lvl, _ := h.Access(0x1000, false); lvl != LevelDRAM {
		t.Error("flush should cold the hierarchy")
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelDRAM: "DRAM"} {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q", int(lvl), lvl.String())
		}
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level formatting")
	}
}

// Hit rate sanity: a working set within L1 capacity hits ~100% after warmup;
// a random set far beyond L3 misses to DRAM frequently.
func TestHierarchyHitRates(t *testing.T) {
	h, _ := NewHierarchy(arch.SandyBridge)
	// 16KB working set fits in 32KB L1.
	for pass := 0; pass < 4; pass++ {
		for a := mem.Addr(0); a < 16<<10; a += 64 {
			h.Access(a, false)
		}
	}
	st := h.Stats()
	// Last 3 passes should be pure L1 hits: misses only from the first.
	if st.L2Loads.Program > st.L1Loads.Program/3 {
		t.Errorf("too many L1 misses for resident set: %+v", st)
	}

	h2, _ := NewHierarchy(arch.SandyBridge)
	rng := rand.New(rand.NewSource(1))
	dram := 0
	for i := 0; i < 20000; i++ {
		a := mem.Addr(rng.Uint64() % (1 << 30)) // 1GB range >> 15MB L3
		if lvl, _ := h2.Access(a, false); lvl == LevelDRAM {
			dram++
		}
	}
	if dram < 15000 {
		t.Errorf("random 1GB accesses: only %d/20000 DRAM misses", dram)
	}
}
