package cache

import "fmt"

// Checkpointable state: a Cache's observable behavior is fully determined
// by its tags array — set contents and recency order live in the same
// words (slot 0 MRU, back slot LRU) — so a snapshot is one copy of the
// array and a restore copies it back into a geometry-identical cache.
// Restore never resizes: checkpoints only make sense against the same
// platform configuration, and a length mismatch means the caller paired a
// checkpoint with the wrong machine.

// CacheState is the checkpointed content of one cache level.
type CacheState struct {
	Tags []uint32
}

// Snapshot captures the cache's line contents and recency order.
//
//mosvet:ckptexempt name,sets,assoc,lineBits,pow2,setMask,fastM,latency geometry and latency are platform configuration rebuilt by the constructor; Restore verifies compatibility via the tag-count check
func (c *Cache) Snapshot() CacheState {
	return CacheState{Tags: append([]uint32(nil), c.tags...)}
}

// Restore overwrites the cache's contents with a snapshot taken from a
// cache of identical geometry.
func (c *Cache) Restore(s CacheState) error {
	if len(s.Tags) != len(c.tags) {
		return fmt.Errorf("cache: %s: restore of %d tags into %d lines (platform mismatch?)",
			c.name, len(s.Tags), len(c.tags))
	}
	copy(c.tags, s.Tags)
	return nil
}

// HierarchyState is the checkpointed content of the whole hierarchy:
// every level's lines plus the cumulative load counters, so a restored
// hierarchy both hits/evicts and *counts* exactly as the original did
// from the checkpoint position on.
type HierarchyState struct {
	L1, L2, L3 CacheState
	// WalkerPrivate is non-nil iff the no-pollution ablation cache was
	// installed when the snapshot was taken.
	WalkerPrivate *CacheState
	Stats         Stats
}

// Snapshot captures all levels and the counters.
//
//mosvet:ckptexempt lineBits,uniform,dramLat geometry and DRAM latency are platform configuration rebuilt by the constructor, not replayed state
func (h *Hierarchy) Snapshot() HierarchyState {
	s := HierarchyState{
		L1:    h.l1.Snapshot(),
		L2:    h.l2.Snapshot(),
		L3:    h.l3.Snapshot(),
		Stats: h.stats,
	}
	if h.walkerPrivate != nil {
		wp := h.walkerPrivate.Snapshot()
		s.WalkerPrivate = &wp
	}
	return s
}

// Restore overwrites the hierarchy with a snapshot taken from a hierarchy
// of identical configuration. A snapshot that includes walker-private
// state requires the ablation cache to already be installed (via
// SetWalkerPrivate); a snapshot without one removes any installed
// ablation cache, mirroring Reset.
func (h *Hierarchy) Restore(s HierarchyState) error {
	if err := h.l1.Restore(s.L1); err != nil {
		return err
	}
	if err := h.l2.Restore(s.L2); err != nil {
		return err
	}
	if err := h.l3.Restore(s.L3); err != nil {
		return err
	}
	if s.WalkerPrivate != nil {
		if h.walkerPrivate == nil {
			return fmt.Errorf("cache: restore of walker-private state into a hierarchy without the ablation cache (call SetWalkerPrivate first)")
		}
		if err := h.walkerPrivate.Restore(*s.WalkerPrivate); err != nil {
			return err
		}
	} else {
		h.walkerPrivate = nil
	}
	h.stats = s.Stats
	return nil
}
