package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/lint"
)

// TestFlagHelp audits the CLI surface: every output/baseline flag must be
// registered with a help string that names its format, so `mosvet -h` is
// the contract for CI wiring (satellite: flag-help unit audit).
func TestFlagHelp(t *testing.T) {
	fs := flag.NewFlagSet("mosvet", flag.ContinueOnError)
	var help bytes.Buffer
	fs.SetOutput(&help)
	// Re-run the real flag registration by invoking run with -h; it prints
	// usage to stderr and exits 2 (flag.ErrHelp).
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-h) = %d, want 2", code)
	}
	usage := stderr.String()
	for flagName, mustMention := range map[string]string{
		"-json":           "JSON",
		"-sarif":          "SARIF 2.1.0",
		"-baseline":       "suppression-audit baseline",
		"-write-baseline": "regenerate",
		"-checks":         "subset of checks",
		"-list":           "list registered checks",
	} {
		if !strings.Contains(usage, flagName) {
			t.Errorf("usage does not register %s:\n%s", flagName, usage)
			continue
		}
		if !strings.Contains(usage, mustMention) {
			t.Errorf("help for %s does not mention %q", flagName, mustMention)
		}
	}
}

func TestListNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range lint.AnalyzerNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nosuchcheck"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-checks nosuchcheck) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown check") {
		t.Errorf("stderr does not explain the unknown check: %s", stderr.String())
	}
}

// TestRunOnModule drives the full CLI against the real module from the
// repository root: the tree must be clean, the JSON report must parse and
// carry the exemption inventory, the SARIF document must identify every
// rule, and the committed baseline must verify fresh.
func TestRunOnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	root := moduleRoot(t)
	tmp := t.TempDir()
	jsonPath := filepath.Join(tmp, "report.json")
	sarifPath := filepath.Join(tmp, "report.sarif")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-dir", root,
		"-json", jsonPath,
		"-sarif", sarifPath,
		"-baseline", filepath.Join(root, "mosvet-baseline.json"),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run on module = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report lint.Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if len(report.Findings) != 0 {
		t.Errorf("clean run reported %d findings in JSON", len(report.Findings))
	}
	if len(report.Suppressions) == 0 {
		t.Error("JSON report carries no exemption inventory — the audit trail is the point")
	}

	sarif, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(sarif, &doc); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("SARIF version = %q, want 2.1.0", v)
	}
	for _, name := range lint.AnalyzerNames() {
		if !bytes.Contains(sarif, []byte(`"`+name+`"`)) {
			t.Errorf("SARIF rules missing %q", name)
		}
	}
}

// TestStaleBaselineFails: drift between the tree's directives and the
// committed baseline must fail the run with exit 1.
func TestStaleBaselineFails(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	root := moduleRoot(t)
	stale := filepath.Join(t.TempDir(), "stale.json")
	if err := os.WriteFile(stale, []byte(`{"note":"test","suppressions":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", root, "-baseline", stale}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run with empty baseline = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "baseline is stale") {
		t.Errorf("stderr does not flag the stale baseline: %s", stderr.String())
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test binary's working directory")
		}
		dir = parent
	}
}
