// Command mosvet is the repo's project-invariant static analyzer: it
// type-checks the whole module (stdlib-only — go/parser + go/types with the
// source importer) and enforces the determinism, locking, codec, and
// checkpoint contracts the simulation and serving tiers rest on.
//
// Checks (see docs/static-analysis.md for rationale and examples):
//
//	detclock    no time.Now/time.Since/global math/rand in simulation packages
//	maporder    no result-feeding iteration over unsorted maps
//	floateq     no ==/!= on float operands
//	lockio      no blocking I/O or channel ops while a serve mutex is held
//	hotpath     no defer/fmt/map-alloc/interface-boxing in //mosvet:hotpath kernels
//	ckptfields  Snapshot writes, Restore reads, and the codec carries every state field
//	codecsym    encode/decode streams of the hand-rolled codecs stay in lockstep
//	lockorder   no mutex acquisition cycles or transitively-blocking calls under locks
//	phasebound  no raw trace.Phase construction outside the trace package
//
// Usage:
//
//	mosvet [-checks detclock,lockio] [-dir .] [-json out.json] [-sarif out.sarif]
//	       [-baseline mosvet-baseline.json | -write-baseline mosvet-baseline.json]
//	       [packages]
//
// Package patterns are accepted for `go vet`-style invocation compatibility
// (`go run ./cmd/mosvet ./...`) but the tool always analyzes the entire
// module enclosing -dir: the invariants are module-wide, and partial runs
// would let a violation hide in an unlisted package.
//
// Exit status: 0 when clean, 1 on findings or a stale baseline, 2 on
// load/typecheck errors. Suppress an individual finding with
// `//mosvet:ignore <check> <reason>` on the finding's line or the line
// above; the reason text is mandatory, and every exemption directive must
// also appear in the committed suppression-audit baseline (-baseline) —
// regenerate it with -write-baseline after triaging a new suppression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mosaic/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mosvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks        = fs.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.AnalyzerNames(), ",")+")")
		dir           = fs.String("dir", ".", "directory inside the module to analyze")
		list          = fs.Bool("list", false, "list registered checks and exit")
		verbose       = fs.Bool("v", false, "print load/analysis timing to stderr")
		jsonOut       = fs.String("json", "", "write findings and the exemption inventory as JSON to this file (\"-\" for stdout)")
		sarifOut      = fs.String("sarif", "", "write findings as a SARIF 2.1.0 document to this file (\"-\" for stdout)")
		baseline      = fs.String("baseline", "", "verify the exemption inventory against this committed suppression-audit baseline file; any drift fails the run")
		writeBaseline = fs.String("write-baseline", "", "regenerate the suppression-audit baseline into this file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
		for _, c := range cfg.Checks {
			if !knownCheck(c) {
				fmt.Fprintf(stderr, "mosvet: unknown check %q (have %s)\n", c, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
		}
	}

	start := time.Now()
	res, err := lint.AnalyzeModuleFull(*dir, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "mosvet: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stderr, "mosvet: analyzed module in %v\n", time.Since(start).Round(time.Millisecond))
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(res)
		if err := b.WriteFile(*writeBaseline); err != nil {
			fmt.Fprintf(stderr, "mosvet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "mosvet: wrote %d exemption(s) to %s\n", len(b.Suppressions), *writeBaseline)
		return 0
	}

	report := lint.BuildReport(res)
	if *jsonOut != "" {
		if err := writeOutput(stdout, *jsonOut, marshalReport(report)); err != nil {
			fmt.Fprintf(stderr, "mosvet: %v\n", err)
			return 2
		}
	}
	if *sarifOut != "" {
		data, err := report.SARIF()
		if err != nil {
			fmt.Fprintf(stderr, "mosvet: %v\n", err)
			return 2
		}
		if err := writeOutput(stdout, *sarifOut, append(data, '\n')); err != nil {
			fmt.Fprintf(stderr, "mosvet: %v\n", err)
			return 2
		}
	}

	for _, f := range res.Findings {
		fmt.Fprintln(stdout, f)
	}
	failed := false
	if len(res.Findings) > 0 {
		fmt.Fprintf(stderr, "mosvet: %d finding(s)\n", len(res.Findings))
		failed = true
	}
	if *baseline != "" {
		drift, err := lint.VerifyBaseline(*baseline, res)
		if err != nil {
			fmt.Fprintf(stderr, "mosvet: %v\n", err)
			return 2
		}
		for _, d := range drift {
			fmt.Fprintln(stdout, d)
		}
		if len(drift) > 0 {
			fmt.Fprintf(stderr, "mosvet: suppression-audit baseline is stale (%d mismatch(es)) — review the exemptions, then regenerate with -write-baseline %s\n", len(drift), *baseline)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func marshalReport(r *lint.Report) []byte {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// The report is plain structs; marshal cannot fail in practice.
		return []byte(fmt.Sprintf("{\"error\":%q}\n", err.Error()))
	}
	return append(data, '\n')
}

func writeOutput(stdout io.Writer, path string, data []byte) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func knownCheck(name string) bool {
	for _, n := range lint.AnalyzerNames() {
		if n == name {
			return true
		}
	}
	return false
}
