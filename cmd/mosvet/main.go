// Command mosvet is the repo's project-invariant static analyzer: it
// type-checks the whole module (stdlib-only — go/parser + go/types with the
// source importer) and enforces the determinism, locking, and hot-path
// invariants the simulation and serving tiers rest on.
//
// Checks (see docs/static-analysis.md for rationale and examples):
//
//	detclock  no time.Now/time.Since/global math/rand in simulation packages
//	maporder  no result-feeding iteration over unsorted maps
//	floateq   no ==/!= on float operands
//	lockio    no blocking I/O or channel ops while a serve mutex is held
//	hotpath   no defer/fmt/map-alloc/interface-boxing in //mosvet:hotpath kernels
//
// Usage:
//
//	mosvet [-checks detclock,lockio] [-dir .] [packages]
//
// Package patterns are accepted for `go vet`-style invocation compatibility
// (`go run ./cmd/mosvet ./...`) but the tool always analyzes the entire
// module enclosing -dir: the invariants are module-wide, and partial runs
// would let a violation hide in an unlisted package.
//
// Exit status: 0 when clean, 1 on findings, 2 on load/typecheck errors.
// Suppress an individual finding with `//mosvet:ignore <check> <reason>` on
// the finding's line or the line above; the reason text is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mosaic/internal/lint"
)

func main() {
	var (
		checks  = flag.String("checks", "", "comma-separated subset of checks to run (default: all of "+strings.Join(lint.AnalyzerNames(), ",")+")")
		dir     = flag.String("dir", ".", "directory inside the module to analyze")
		list    = flag.Bool("list", false, "list registered checks and exit")
		verbose = flag.Bool("v", false, "print load/analysis timing to stderr")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-9s %s\n", a.Name, a.Doc)
		}
		return
	}

	cfg := lint.DefaultConfig()
	if *checks != "" {
		cfg.Checks = strings.Split(*checks, ",")
		for _, c := range cfg.Checks {
			if !knownCheck(c) {
				fmt.Fprintf(os.Stderr, "mosvet: unknown check %q (have %s)\n", c, strings.Join(lint.AnalyzerNames(), ", "))
				os.Exit(2)
			}
		}
	}

	start := time.Now()
	findings, err := lint.AnalyzeModule(*dir, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mosvet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "mosvet: analyzed module in %v\n", time.Since(start).Round(time.Millisecond))
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mosvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func knownCheck(name string) bool {
	for _, n := range lint.AnalyzerNames() {
		if n == name {
			return true
		}
	}
	return false
}
