// Command mosd is the prediction-serving daemon: an HTTP/JSON API over
// the repo's runtime-model registry and measurement pipeline.
//
//	mosd -addr :7077 -registry ./models -tracedir ./traces
//
// POST /v1/predict evaluates a trained model (Mosmodel by default) for a
// (workload, platform) pair in microseconds; POST /v1/jobs runs the
// measurement sweeps that train those models as bounded background work.
// /healthz, /readyz, and Prometheus-style /metrics make it deployable
// behind ordinary infrastructure. SIGTERM and SIGINT drain gracefully:
// in-flight requests and running jobs finish, queued jobs are canceled,
// and the process exits 0.
//
// The same binary is also the sweep fleet's worker:
//
//	mosd -worker -join http://coordinator:7077 -tracedir ./traces
//
// A worker registers with a coordinator (any mosd started with -cluster),
// leases sweep shards, executes them through the replay pipeline, and
// streams the counters back. Results are deterministic, so the
// coordinator's merged dataset is bit-identical to a single-node run —
// workers add throughput, never uncertainty.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mosaic/internal/cluster"
	"mosaic/internal/serve"
	"mosaic/internal/serve/registry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "listen address (host:port; :0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file once serving (for scripts wrapping :0)")
		regDir   = flag.String("registry", "", "directory of trained-model files (empty: in-memory only)")
		traceDir = flag.String("tracedir", "", "directory for caching workload traces across jobs and restarts")
		workers  = flag.Int("job-workers", 2, "concurrently running sweep jobs")
		queue    = flag.Int("job-queue", 16, "sweep jobs allowed to wait; beyond this, submissions get 429")
		parallel = flag.Int("parallelism", 0, "worker goroutines inside each job (default: GOMAXPROCS)")
		reload   = flag.Duration("reload-interval", 10*time.Second, "how often to poll the registry directory for retrained models (duration, e.g. 10s or 500ms; 0 disables)")
		drainFor = flag.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for running jobs before canceling them (duration, e.g. 10m)")

		clusterOn  = flag.Bool("cluster", false, "enable the sweep-fabric coordinator: accept worker registrations on /cluster/v1/* and shard sweep jobs across them")
		token      = flag.String("cluster-token", os.Getenv("MOSD_CLUSTER_TOKEN"), "shared secret for /cluster/v1/* (coordinator requires it from workers; workers send it); empty disables auth — only safe on an isolated network (default $MOSD_CLUSTER_TOKEN)")
		leaseTTL   = flag.Duration("lease-ttl", 15*time.Second, "coordinator: shard lease duration; a worker silent this long loses its shard to retry")
		shardSpan  = flag.Int("shard-layouts", 0, "coordinator: layouts per shard (0: size automatically from fleet capacity)")
		workerMode = flag.Bool("worker", false, "run as a sweep worker instead of a daemon (requires -join)")
		join       = flag.String("join", "", "worker: coordinator base URL to register with (e.g. http://host:7077)")
		workerName = flag.String("worker-name", "", "worker: name reported to the coordinator (default host:pid)")
		capacity   = flag.Int("worker-capacity", 1, "worker: shards executed concurrently")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mosd ")

	if *workerMode {
		if err := runWorker(*join, *workerName, *traceDir, *token, *capacity, *parallel); err != nil {
			log.Fatal(err)
		}
		return
	}
	var co *cluster.Coordinator
	if *clusterOn {
		if *token == "" {
			log.Printf("warning: -cluster without -cluster-token; /cluster/v1/* accepts any worker — isolate the listener (see docs/cluster.md)")
		}
		co = cluster.NewCoordinator(cluster.CoordinatorConfig{
			LeaseTTL:     *leaseTTL,
			ShardLayouts: *shardSpan,
			Token:        *token,
		})
	}
	if err := run(*addr, *addrFile, *regDir, *traceDir, *workers, *queue, *parallel, *reload, *drainFor, co); err != nil {
		log.Fatal(err)
	}
}

// runWorker joins a coordinator and executes leased shards until a signal
// stops the process. Stopping is deliberately abrupt: the coordinator's
// lease expiry re-runs whatever was in flight, deterministically.
func runWorker(join, name, traceDir, token string, capacity, parallel int) error {
	if join == "" {
		return errors.New("-worker requires -join <coordinator URL>")
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := &cluster.Worker{
		Name:     name,
		Capacity: capacity,
		Client:   cluster.NewClient(join, token),
		Exec: &cluster.ExperimentExecutor{
			TraceDir:    traceDir,
			Parallelism: parallel,
		},
		Logf: log.Printf,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	log.Printf("worker %s joining %s (capacity %d, GOMAXPROCS=%d)", name, join, capacity, runtime.GOMAXPROCS(0))
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	log.Printf("worker stopped")
	return nil
}

func run(addr, addrFile, regDir, traceDir string, workers, queue, parallel int, reload, drainFor time.Duration, co *cluster.Coordinator) error {
	reg, err := registry.Open(regDir)
	if err != nil {
		return fmt.Errorf("opening registry: %w", err)
	}
	exec := &serve.SweepExecutor{
		TraceDir:    traceDir,
		Parallelism: parallel,
		Registry:    reg,
		Fabric:      co,
	}
	srv := serve.NewServer(serve.ServerConfig{
		Registry:      reg,
		Executor:      exec.Run,
		PoolIdle:      exec.PoolIdle,
		JobWorkers:    workers,
		JobQueueDepth: queue,
		Cluster:       co,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if reload > 0 && regDir != "" {
		go reg.Watch(ctx, reload)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	mode := "single-node"
	if co != nil {
		mode = "cluster coordinator"
	}
	log.Printf("serving on http://%s (%s, registry %q, %d trained pairs, %d job workers, GOMAXPROCS=%d)",
		ln.Addr(), mode, regDir, reg.Len(), workers, runtime.GOMAXPROCS(0))

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("signal received; draining (up to %v for running jobs)", drainFor)

	drainCtx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	// Stop the listener first so load balancers fail over, then drain jobs.
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("job drain incomplete: %v", err)
	}
	log.Printf("drained; exiting")
	return nil
}
