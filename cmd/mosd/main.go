// Command mosd is the prediction-serving daemon: an HTTP/JSON API over
// the repo's runtime-model registry and measurement pipeline.
//
//	mosd -addr :7077 -registry ./models -tracedir ./traces
//
// POST /v1/predict evaluates a trained model (Mosmodel by default) for a
// (workload, platform) pair in microseconds; POST /v1/jobs runs the
// measurement sweeps that train those models as bounded background work.
// /healthz, /readyz, and Prometheus-style /metrics make it deployable
// behind ordinary infrastructure. SIGTERM and SIGINT drain gracefully:
// in-flight requests and running jobs finish, queued jobs are canceled,
// and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mosaic/internal/serve"
	"mosaic/internal/serve/registry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7077", "listen address (host:port; :0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file once serving (for scripts wrapping :0)")
		regDir   = flag.String("registry", "", "directory of trained-model files (empty: in-memory only)")
		traceDir = flag.String("tracedir", "", "directory for caching workload traces across jobs and restarts")
		workers  = flag.Int("job-workers", 2, "concurrently running sweep jobs")
		queue    = flag.Int("job-queue", 16, "sweep jobs allowed to wait; beyond this, submissions get 429")
		parallel = flag.Int("parallelism", 0, "worker goroutines inside each job (default: GOMAXPROCS)")
		reload   = flag.Duration("reload-interval", 10*time.Second, "how often to poll the registry directory for retrained models (duration, e.g. 10s or 500ms; 0 disables)")
		drainFor = flag.Duration("drain-timeout", 10*time.Minute, "how long shutdown waits for running jobs before canceling them (duration, e.g. 10m)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mosd ")

	if err := run(*addr, *addrFile, *regDir, *traceDir, *workers, *queue, *parallel, *reload, *drainFor); err != nil {
		log.Fatal(err)
	}
}

func run(addr, addrFile, regDir, traceDir string, workers, queue, parallel int, reload, drainFor time.Duration) error {
	reg, err := registry.Open(regDir)
	if err != nil {
		return fmt.Errorf("opening registry: %w", err)
	}
	exec := &serve.SweepExecutor{
		TraceDir:    traceDir,
		Parallelism: parallel,
		Registry:    reg,
	}
	srv := serve.NewServer(serve.ServerConfig{
		Registry:      reg,
		Executor:      exec.Run,
		PoolIdle:      exec.PoolIdle,
		JobWorkers:    workers,
		JobQueueDepth: queue,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if reload > 0 && regDir != "" {
		go reg.Watch(ctx, reload)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("serving on http://%s (registry %q, %d trained pairs, %d job workers, GOMAXPROCS=%d)",
		ln.Addr(), regDir, reg.Len(), workers, runtime.GOMAXPROCS(0))

	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("signal received; draining (up to %v for running jobs)", drainFor)

	drainCtx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	// Stop the listener first so load balancers fail over, then drain jobs.
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("job drain incomplete: %v", err)
	}
	log.Printf("drained; exiting")
	return nil
}
