// Command moslayout generates and inspects the memory layouts the paper's
// protocol measures (§VI-B): the 54 growing/random/sliding-window mosaics
// plus the 4KB/2MB/1GB baselines for one workload on one platform.
//
// Usage:
//
//	moslayout -workload gups/8GB                 # list the 54 layouts
//	moslayout -workload gups/8GB -profile       # show the TLB-miss profile
//	moslayout -workload gups/8GB -layout 2MB    # print one layout's pools
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/layout"
	"mosaic/internal/mem"
	"mosaic/internal/report"
	"mosaic/internal/workloads"
)

func main() {
	var (
		wlFlag   = flag.String("workload", "gups/8GB", "workload to lay out")
		platFlag = flag.String("platform", "SandyBridge", "platform whose TLB drives the sliding-window profile")
		profile  = flag.Bool("profile", false, "print the simulated-PEBS TLB-miss profile")
		layFlag  = flag.String("layout", "", "print one named layout's pool mosaics")
		traceDir = flag.String("tracedir", "", "directory for caching workload traces across runs")
	)
	flag.Parse()

	w, err := workloads.ByName(*wlFlag)
	if err != nil {
		fatal(err)
	}
	plat, err := arch.ByName(*platFlag)
	if err != nil {
		fatal(err)
	}

	runner := experiment.NewRunner()
	runner.TraceDir = *traceDir
	fmt.Fprintf(os.Stderr, "generating %s trace...\n", w.Name())
	wd, err := runner.Prepare(w)
	if err != nil {
		fatal(err)
	}
	target := wd.Target
	miss := layout.ProfileMisses(wd.Trace, plat.Scaled().TLB, target)

	fmt.Printf("workload %s: heap used %dMB, anon used %dMB (space %dMB)\n",
		w.Name(), target.HeapUsed>>20, target.AnonUsed>>20, target.Space()>>20)
	hs, he := miss.HotRegion(0.8)
	fmt.Printf("hot region (80%% of %d TLB misses): [%dMB, %dMB)\n\n", miss.Total(), hs>>20, he>>20)

	lays := target.Standard(miss, 1)
	lays = append(lays, target.Baseline1G())

	if *profile {
		printProfile(miss)
		return
	}
	if *layFlag != "" {
		for _, l := range lays {
			if l.Name == *layFlag {
				fmt.Printf("layout %s:\n  heap: %s\n  anon: %s\n  file: %dMB (4KB only)\n",
					l.Name, l.Cfg.HeapPool, l.Cfg.AnonPool, l.Cfg.FilePoolBytes>>20)
				return
			}
		}
		fatal(fmt.Errorf("unknown layout %q", *layFlag))
	}

	t := report.NewTable("layout", "2MB bytes", "4KB bytes", "2MB share")
	for _, l := range lays {
		by2m := l.Cfg.HeapPool.BytesBySize()[mem.Page2M] + l.Cfg.AnonPool.BytesBySize()[mem.Page2M]
		by4k := l.Cfg.HeapPool.BytesBySize()[mem.Page4K] + l.Cfg.AnonPool.BytesBySize()[mem.Page4K]
		total := by2m + by4k
		share := "1GB"
		if total > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(by2m)/float64(total))
		}
		t.AddRow(l.Name, fmt.Sprintf("%dMB", by2m>>20), fmt.Sprintf("%dMB", by4k>>20), share)
	}
	fmt.Println(t.String())
}

func printProfile(p layout.MissProfile) {
	total := p.Total()
	if total == 0 {
		fmt.Println("no TLB misses recorded")
		return
	}
	var peak uint64
	for _, c := range p.Counts {
		if c > peak {
			peak = c
		}
	}
	fmt.Println("TLB-miss histogram (one row per 2MB chunk):")
	for i, c := range p.Counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", int(c*50/peak)+1)
		fmt.Printf("%6dMB %8d %s\n", i*2, c, bar)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moslayout:", err)
	os.Exit(1)
}
