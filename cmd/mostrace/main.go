// Command mostrace inspects workload memory-access traces: length,
// footprint, dependence and write mix, and the per-region access
// distribution — the raw material the whole pipeline consumes.
//
// Usage:
//
//	mostrace                         # summarize all 19 workloads + the dbindex suite
//	mostrace -workload spec06/mcf    # details for one workload
package main

import (
	"flag"
	"fmt"
	"os"

	"mosaic/internal/arch"
	"mosaic/internal/cpu"
	"mosaic/internal/experiment"
	"mosaic/internal/libc"
	"mosaic/internal/mem"
	"mosaic/internal/mosalloc"
	"mosaic/internal/report"
	"mosaic/internal/trace"
	"mosaic/internal/workloads"
)

func main() {
	wlFlag := flag.String("workload", "", "one workload to inspect in detail (default: summarize all)")
	traceDir := flag.String("tracedir", "", "directory for caching workload traces across runs")
	flag.Parse()

	runner := experiment.NewRunner()
	runner.TraceDir = *traceDir
	if *wlFlag != "" {
		w, err := workloads.ByName(*wlFlag)
		if err != nil {
			fatal(err)
		}
		detail(runner, w)
		return
	}

	t := report.NewTable("workload", "accesses", "instructions", "footprint", "writes", "dependent", "phases")
	for _, w := range append(workloads.All(), workloads.DBIndex()...) {
		wd, err := runner.Prepare(w)
		if err != nil {
			fatal(err)
		}
		tr := wd.Trace
		writes, deps := mix(tr)
		t.AddRow(w.Name(),
			fmt.Sprintf("%d", tr.Len()),
			fmt.Sprintf("%d", tr.Instructions()),
			fmt.Sprintf("%dMB", tr.Footprint()>>20),
			fmt.Sprintf("%.0f%%", 100*writes),
			fmt.Sprintf("%.0f%%", 100*deps),
			phaseSummary(tr),
		)
		fmt.Fprintf(os.Stderr, ".")
	}
	fmt.Fprintln(os.Stderr)
	fmt.Println(t.String())
}

// phaseSummary renders a trace's phase partition as name(share%) pairs, or
// "-" for the single-phase (phase-less) workloads.
func phaseSummary(tr *trace.Trace) string {
	phases := tr.Phases()
	if len(phases) == 0 {
		return "-"
	}
	s := ""
	for i, p := range phases {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s(%.0f%%)", p.Name, 100*float64(p.Hi-p.Lo)/float64(tr.Len()))
	}
	return s
}

func mix(tr *trace.Trace) (writes, deps float64) {
	var w, d int
	cols := tr.Columns()
	for i := 0; i < cols.Len(); i++ {
		if cols.Write(i) {
			w++
		}
		if cols.Dep(i) {
			d++
		}
	}
	n := float64(tr.Len())
	return float64(w) / n, float64(d) / n
}

func detail(runner *experiment.Runner, w workloads.Workload) {
	wd, err := runner.Prepare(w)
	if err != nil {
		fatal(err)
	}
	tr := wd.Trace
	writes, deps := mix(tr)
	fmt.Printf("workload:     %s\n", w.Name())
	fmt.Printf("accesses:     %d\n", tr.Len())
	fmt.Printf("instructions: %d (%.1f per access)\n",
		tr.Instructions(), float64(tr.Instructions())/float64(tr.Len()))
	fmt.Printf("footprint:    %dMB touched (extent %v)\n", tr.Footprint()>>20, tr.Extent())
	fmt.Printf("writes:       %.1f%%\n", 100*writes)
	fmt.Printf("dependent:    %.1f%%\n", 100*deps)
	fmt.Printf("pools:        heap %dMB used, anon %dMB used\n\n",
		wd.Target.HeapUsed>>20, wd.Target.AnonUsed>>20)

	// Access histogram over 2MB chunks, densest first.
	hist := tr.PageHistogram(mem.Page2M)
	chunks := trace.SortedChunks(hist)
	fmt.Println("densest 2MB chunks (accesses per chunk):")
	type kv struct {
		addr  mem.Addr
		count uint64
	}
	var top []kv
	for _, c := range chunks {
		top = append(top, kv{c, hist[c]})
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].count > top[i].count {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	if len(top) > 10 {
		top = top[:10]
	}
	for _, e := range top {
		off, ok := wd.Target.ConcatOffset(e.addr)
		loc := "?"
		if ok {
			loc = fmt.Sprintf("offset %dMB", off>>20)
		}
		fmt.Printf("  %#014x  %8d  (%s)\n", uint64(e.addr), e.count, loc)
	}

	// Runtime breakdown under a 4KB layout on SandyBridge: where the
	// cycles go.
	proc, err := libc.NewProcess(1 << 36)
	if err != nil {
		fatal(err)
	}
	if _, err := mosalloc.Attach(proc, wd.Target.Baseline4K().Cfg); err != nil {
		fatal(err)
	}
	machine, err := cpu.New(arch.SandyBridge.Scaled(), proc.Space())
	if err != nil {
		fatal(err)
	}
	ctr, bd, err := machine.RunDetailed(tr)
	if err != nil {
		fatal(err)
	}
	total := bd.Total()
	fmt.Printf("\nruntime breakdown (4KB pages, SandyBridge): R=%d cycles\n", ctr.R)
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"base work", bd.Base},
		{"L2 TLB hits", bd.TLBHit},
		{"walk stalls", bd.WalkStall},
		{"walker queueing", bd.WalkQueue},
		{"data stalls", bd.DataStall},
	} {
		fmt.Printf("  %-16s %12.0f  (%5.1f%%)\n", c.name, c.v, 100*c.v/total)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mostrace:", err)
	os.Exit(1)
}
