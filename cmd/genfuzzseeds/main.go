// Command genfuzzseeds regenerates the committed fuzz seed corpora under
// internal/{trace,ckpt,cluster}/testdata/fuzz. The seeds are valid wire
// streams produced by the real encoders — plus deliberate truncations and
// corruptions — so `go test -fuzz` starts from inputs that exercise the
// deep decode paths instead of spending its budget rediscovering the magic
// bytes. Run it from the module root after a wire-format change:
//
//	go run ./cmd/genfuzzseeds
//
// Output files use the `go test fuzz v1` corpus encoding and are
// deterministic: regenerating without a format change is a no-op diff.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"mosaic/internal/ckpt"
	"mosaic/internal/cluster"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genfuzzseeds: ")
	writeAll("internal/trace/testdata/fuzz/FuzzTraceRoundTrip", traceSeeds())
	writeAll("internal/ckpt/testdata/fuzz/FuzzCheckpointRoundTrip", ckptSeeds())
	writeAll("internal/cluster/testdata/fuzz/FuzzShardRoundTrip", shardSeeds())
}

// writeAll writes each named seed as one `go test fuzz v1` corpus file.
func writeAll(dir string, seeds map[string][]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d bytes)", path, len(data))
	}
}

func traceSeeds() map[string][]byte {
	accesses := []trace.Access{
		{VA: 0x1000, Gap: 3},
		{VA: 0x1040, Gap: 1, Write: true},
		{VA: 0x200000, Gap: 7, Dep: true},
		{VA: 0x1080, Gap: 0},
		{VA: 0x40000000, Gap: 12, Write: true, Dep: true},
		{VA: 0x10c0, Gap: 2},
	}
	tr := trace.New("seed", accesses)
	var v1, v2 bytes.Buffer
	if _, err := tr.WriteToV01(&v1); err != nil {
		log.Fatal(err)
	}
	if _, err := tr.WriteTo(&v2); err != nil {
		log.Fatal(err)
	}
	pb := trace.NewBuilder("seed-phased", len(accesses))
	for i, a := range accesses {
		switch i {
		case 0:
			pb.BeginPhase("ramp")
		case 3:
			pb.BeginPhase("steady")
		}
		pb.Compute(uint64(a.Gap))
		switch {
		case a.Write && a.Dep:
			pb.StoreDep(a.VA)
		case a.Write:
			pb.Store(a.VA)
		case a.Dep:
			pb.LoadDep(a.VA)
		default:
			pb.Load(a.VA)
		}
	}
	phased := pb.Trace()
	var vp bytes.Buffer
	if _, err := phased.WriteTo(&vp); err != nil {
		log.Fatal(err)
	}
	return map[string][]byte{
		"seed-v01":          v1.Bytes(),
		"seed-v02":          v2.Bytes(),
		"seed-phased":       vp.Bytes(),
		"seed-phased-trunc": vp.Bytes()[:vp.Len()-7],
	}
}

func ckptSeeds() map[string][]byte {
	st := &ckpt.MachineState{
		HasClock:     true,
		Now:          1234.5,
		MissRate:     0.25,
		WalkCycles:   99,
		Instructions: 4096,
		Breakdown:    [5]float64{1, 2, 3, 4, 5},
		WalkerFree:   []float64{10, 20},
	}
	st.TLB.L14K = []uint64{1, 2, 3, 4}
	st.TLB.L2 = []uint64{5, 6}
	st.TLB.Counts.Lookups = 400
	st.TLB.Counts.Misses = 9
	st.TLB.MissBySize = [4]uint64{4, 3, 2, 0}
	st.Hier.L1.Tags = []uint32{7, 8, 9}
	st.Hier.L2.Tags = []uint32{10}
	st.Hier.L3.Tags = []uint32{11, 12}
	st.Walk.PML4.Entries = 1
	st.Walk.PML4.Keys = []uint64{0xfee}
	st.Walk.PML4.Prev = []uint16{0}
	st.Walk.PML4.Next = []uint16{0}
	st.Walk.Stats.Walks = 9
	st.Walk.Stats.WalkCycles = 99
	var buf bytes.Buffer
	if _, err := st.Encode(&buf, "seed/pair@plat", 42); err != nil {
		log.Fatal(err)
	}
	valid := buf.Bytes()
	badVer := append([]byte(nil), valid...)
	badVer[8] = '9'
	return map[string][]byte{
		"seed-valid":  valid,
		"seed-trunc":  append([]byte(nil), valid[:len(valid)/2]...),
		"seed-badver": badVer,
	}
}

func shardSeeds() map[string][]byte {
	spec := &cluster.ShardSpec{
		Key:      "job-1/0-4",
		Job:      "job-1",
		Workload: "gups",
		Platform: "skylake",
		Proto:    "standard",
		Sampling: sim.Sampling{Period: 1000, MeasureLen: 100, WarmupLen: 200},
		Lo:       0,
		Hi:       4,
	}
	specB, err := spec.Encode()
	if err != nil {
		log.Fatal(err)
	}
	res := &cluster.ShardResult{
		Key: "job-1/0-4",
		Job: "job-1",
		Lo:  0,
		Hi:  2,
		Results: []cluster.LayoutResult{
			{Layout: "4k", Result: sim.Result{Counters: pmu.Counters{H: 10, M: 2, C: 100, R: 5000}}},
			{Layout: "2m-50", Result: sim.Result{
				Counters:         pmu.Counters{H: 12, M: 1, C: 80, R: 4800},
				WalkRefs:         17,
				MeasuredAccesses: 100,
				TotalAccesses:    1000,
			}},
		},
	}
	resB, err := res.Encode()
	if err != nil {
		log.Fatal(err)
	}
	corrupt := append([]byte(nil), specB...)
	corrupt[len(corrupt)-1] ^= 0xff // break the checksum trailer
	return map[string][]byte{
		"seed-spec":         specB,
		"seed-result":       resB,
		"seed-spec-badsum":  corrupt,
		"seed-result-trunc": append([]byte(nil), resB[:len(resB)-9]...),
	}
}
