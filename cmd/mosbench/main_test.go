package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/plan"
	"mosaic/internal/workloads"
)

// quickBench builds a bench over the 9-layout quick protocol with captured
// writers, restricted to the fastest workload so tests stay in the
// sub-second range.
func quickBench(t *testing.T) (*bench, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	out, diag := &bytes.Buffer{}, &bytes.Buffer{}
	b := &bench{
		runner:    experiment.NewRunner(),
		workloads: []workloads.Workload{w},
		platforms: []arch.Platform{arch.SandyBridge},
		out:       out,
		diag:      diag,
	}
	b.runner.Proto = experiment.Quick
	b.stretch = 1
	return b, out, diag
}

// TestExportJSONStdoutPure pins the writer split: with -json, stdout must
// hold exactly one parseable JSON document — every progress line, stage
// summary, and exclusion note goes to stderr. A consumer piping
// `mosbench -json > data.json` depends on this.
func TestExportJSONStdoutPure(t *testing.T) {
	b, out, diag := quickBench(t)
	if err := b.exportJSON(); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Workload, Platform string
		TLBSensitive       bool
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\nstdout: %q", err, out.String())
	}
	if dec.More() {
		t.Fatalf("stdout holds content after the JSON document: %q", out.String())
	}
	if len(doc) != 1 || doc[0].Workload != "gups/8GB" {
		t.Fatalf("decoded %+v", doc)
	}
	// The sweep's progress narration went to the diagnostic writer.
	if !strings.Contains(diag.String(), "workers=") {
		t.Errorf("no progress lines on the diagnostic stream: %q", diag.String())
	}
}

// TestFigureOutputSplit: rendering a figure puts the table on out and the
// stage-time summary on diag, with no cross-leakage of progress markers.
func TestFigureOutputSplit(t *testing.T) {
	b, out, diag := quickBench(t)
	if err := b.figure("2b"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2b") || !strings.Contains(out.String(), "mosmodel") {
		t.Errorf("figure table missing from out: %q", out.String())
	}
	if strings.Contains(out.String(), "workers=") || strings.Contains(out.String(), "stage ") {
		t.Errorf("progress/stage diagnostics leaked into out: %q", out.String())
	}
	if !strings.Contains(diag.String(), "stage ") {
		t.Errorf("stage-time summary missing from diag: %q", diag.String())
	}
}

// TestCheckRegressionGates exercises the pure gate logic: direction-aware
// 10% tolerances, the absolute accuracy-contract bound, and the skip rules
// for unmeasured metrics and core-count mismatches.
func TestCheckRegressionGates(t *testing.T) {
	base := benchRow{PR: 5, Cores: 8, SweepMs: 1000, SampledSpeedup: 10, WorstSigErr: 0.004, WindowedSpeedup: 3.0}
	wide := benchRow{PR: 7, Cores: 8, TraceLoadMs: 50, PredictP99Ms: 10, AdaptiveCostRatio: 0.29}
	cases := []struct {
		name string
		rows []benchRow
		want int
	}{
		{"empty history", nil, 0},
		{"single clean row", []benchRow{base}, 0},
		{"identical rows pass", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, SampledSpeedup: 10, WorstSigErr: 0.004, WindowedSpeedup: 3.0}}, 0},
		{"within tolerance passes", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1090, SampledSpeedup: 9.1, WindowedSpeedup: 2.8}}, 0},
		{"sweep slowdown fails", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1200}}, 1},
		{"sampled speedup loss fails", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, SampledSpeedup: 8.5}}, 1},
		{"windowed speedup loss fails", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, WindowedSpeedup: 2.0}}, 1},
		{"windowed loss on different cores is skipped", []benchRow{base, {PR: 6, Cores: 1, SweepMs: 1000, WindowedSpeedup: 1.0}}, 0},
		{"accuracy contract is absolute", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, WorstSigErr: 0.02}}, 1},
		{"unmeasured metrics are skipped", []benchRow{base, {PR: 6, Cores: 8}}, 0},
		{"multiple regressions all reported", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 2000, SampledSpeedup: 5, WorstSigErr: 0.05, WindowedSpeedup: 1.0}}, 4},
		{"only last pair gates", []benchRow{{PR: 4, Cores: 8, SweepMs: 100}, base, {PR: 6, Cores: 8, SweepMs: 1000}}, 0},
		{"trace load slowdown fails", []benchRow{wide, {PR: 8, Cores: 8, TraceLoadMs: 56}}, 1},
		{"predict p99 slowdown fails", []benchRow{wide, {PR: 8, Cores: 8, PredictP99Ms: 12}}, 1},
		{"new latency metrics within tolerance pass", []benchRow{wide, {PR: 8, Cores: 8, TraceLoadMs: 54, PredictP99Ms: 10.9}}, 0},
		{"new metrics absent in previous row are skipped", []benchRow{base, {PR: 8, Cores: 8, TraceLoadMs: 999, PredictP99Ms: 999}}, 0},
		{"adaptive cost contract is absolute", []benchRow{wide, {PR: 8, Cores: 8, AdaptiveCostRatio: 0.4}}, 1},
		{"adaptive cost within contract passes", []benchRow{wide, {PR: 8, Cores: 8, AdaptiveCostRatio: 0.3}}, 0},
		{"phase error contract is absolute", []benchRow{wide, {PR: 9, Cores: 8, PhaseMaxErr: 1.2}}, 1},
		{"phase error within contract passes", []benchRow{wide, {PR: 9, Cores: 8, PhaseMaxErr: 0.98}}, 0},
		{"cluster speedup loss fails", []benchRow{{PR: 7, Cores: 8, ClusterSpeedup: 1.8}, {PR: 8, Cores: 8, ClusterSpeedup: 1.5}}, 1},
		{"cluster speedup loss on different cores is skipped", []benchRow{{PR: 7, Cores: 8, ClusterSpeedup: 1.8}, {PR: 8, Cores: 1, ClusterSpeedup: 0.9}}, 0},
		{"cluster speedup within tolerance passes", []benchRow{{PR: 7, Cores: 8, ClusterSpeedup: 1.8}, {PR: 8, Cores: 8, ClusterSpeedup: 1.7}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkRegression(tc.rows)
			if len(got) != tc.want {
				t.Errorf("%d violations %v, want %d", len(got), got, tc.want)
			}
		})
	}
}

// TestHistoryAppendRoundTrip: the ledger is append-only, atomic, and
// readable back; -append-row rejects malformed rows.
func TestHistoryAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	var out bytes.Buffer
	if err := runAppendRow(path, `{"pr": 1, "cores": 8, "sweep_ms": 1500}`, &out); err != nil {
		t.Fatal(err)
	}
	if err := runAppendRow(path, `{"pr": 2, "cores": 8, "sweep_ms": 1400, "sampled_speedup": 9.5, "trace_load_ms": 42.5, "predict_p99_ms": 8.1, "adaptive_cost_ratio": 0.29}`, &out); err != nil {
		t.Fatal(err)
	}
	rows, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].PR != 1 || rows[1].SampledSpeedup != 9.5 {
		t.Fatalf("history after two appends: %+v", rows)
	}
	if rows[1].TraceLoadMs != 42.5 || rows[1].PredictP99Ms != 8.1 || rows[1].AdaptiveCostRatio != 0.29 {
		t.Fatalf("new ledger columns did not round-trip: %+v", rows[1])
	}
	if err := runCheckRegression(path, &out); err != nil {
		t.Fatalf("clean history gated: %v", err)
	}

	if err := runAppendRow(path, `{"sweep_ms": 1}`, &out); err == nil {
		t.Error("row without pr accepted")
	}
	if err := runAppendRow(path, `{"pr": 3, "bogus": 1}`, &out); err == nil {
		t.Error("row with unknown field accepted")
	}
	if rows, _ = loadHistory(path); len(rows) != 2 {
		t.Fatalf("rejected rows mutated the ledger: %+v", rows)
	}

	// A regressing row makes the gate fail.
	if err := runAppendRow(path, `{"pr": 3, "cores": 8, "sweep_ms": 2800}`, &out); err != nil {
		t.Fatal(err)
	}
	if err := runCheckRegression(path, &out); err == nil {
		t.Fatal("2× sweep slowdown passed the regression gate")
	}
}

// TestHistorySVG: the -history-svg mode renders the ledger into a
// well-formed chart with one panel per measured metric, and refuses an
// empty ledger.
func TestHistorySVG(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_history.json")
	var out bytes.Buffer
	for _, row := range []string{
		`{"pr": 1, "cores": 8, "sweep_ms": 1500}`,
		`{"pr": 2, "cores": 8, "sweep_ms": 1400, "sampled_speedup": 9.5}`,
		`{"pr": 3, "cores": 8, "sweep_ms": 1300, "sampled_speedup": 9.8, "adaptive_cost_ratio": 0.29}`,
	} {
		if err := runAppendRow(path, row, &out); err != nil {
			t.Fatal(err)
		}
	}
	svgPath := filepath.Join(dir, "trajectory.svg")
	if err := runHistorySVG(path, svgPath, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	svg := string(raw)
	for _, want := range []string{"quick sweep wall time", "sampled replay speedup", "adaptive sweep cost ratio", "PR 1", "PR 3", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("trajectory SVG lacks %q", want)
		}
	}
	// Metrics never measured get no panel.
	if strings.Contains(svg, "predict p99") || strings.Contains(svg, "NaN") {
		t.Errorf("trajectory SVG renders unmeasured metrics or NaN: %.200s", svg)
	}

	if err := runHistorySVG(filepath.Join(dir, "missing.json"), svgPath, &out); err == nil {
		t.Error("empty ledger rendered without error")
	}
}

// TestAdaptiveRunQuick: the -adaptive mode on the quick protocol plans a
// real sweep and emits one JSON row per pair with a monotone-cost curve.
func TestAdaptiveRunQuick(t *testing.T) {
	b, out, _ := quickBench(t)
	if err := b.adaptiveRun(plan.Config{MaxPromotions: 3}, true); err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Workload   string  `json:"workload"`
		Layouts    int     `json:"layouts"`
		Promotions int     `json:"promotions"`
		CostRatio  float64 `json:"cost_ratio"`
		Stopped    string  `json:"stopped"`
		Curve      []struct {
			CostAccesses uint64 `json:"costAccesses"`
		} `json:"curve"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("adaptive JSON: %v\n%s", err, out.String())
	}
	if len(rows) != 1 || rows[0].Workload != "gups/8GB" {
		t.Fatalf("rows %+v", rows)
	}
	r := rows[0]
	if r.Promotions != 3 || r.Stopped != "budget" {
		t.Errorf("promotions %d stop %q, want 3 exact measurements to exhaust the budget", r.Promotions, r.Stopped)
	}
	if r.CostRatio <= 0 || r.CostRatio >= 1 {
		t.Errorf("cost ratio %.3f outside (0, 1)", r.CostRatio)
	}
	if len(r.Curve) == 0 {
		t.Fatal("no error-vs-budget curve")
	}
	for i := 1; i < len(r.Curve); i++ {
		if r.Curve[i].CostAccesses < r.Curve[i-1].CostAccesses {
			t.Errorf("curve cost decreased at round %d", i)
		}
	}
}
