package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/workloads"
)

// quickBench builds a bench over the 9-layout quick protocol with captured
// writers, restricted to the fastest workload so tests stay in the
// sub-second range.
func quickBench(t *testing.T) (*bench, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	out, diag := &bytes.Buffer{}, &bytes.Buffer{}
	b := &bench{
		runner:    experiment.NewRunner(),
		workloads: []workloads.Workload{w},
		platforms: []arch.Platform{arch.SandyBridge},
		out:       out,
		diag:      diag,
	}
	b.runner.Proto = experiment.Quick
	b.stretch = 1
	return b, out, diag
}

// TestExportJSONStdoutPure pins the writer split: with -json, stdout must
// hold exactly one parseable JSON document — every progress line, stage
// summary, and exclusion note goes to stderr. A consumer piping
// `mosbench -json > data.json` depends on this.
func TestExportJSONStdoutPure(t *testing.T) {
	b, out, diag := quickBench(t)
	if err := b.exportJSON(); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Workload, Platform string
		TLBSensitive       bool
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\nstdout: %q", err, out.String())
	}
	if dec.More() {
		t.Fatalf("stdout holds content after the JSON document: %q", out.String())
	}
	if len(doc) != 1 || doc[0].Workload != "gups/8GB" {
		t.Fatalf("decoded %+v", doc)
	}
	// The sweep's progress narration went to the diagnostic writer.
	if !strings.Contains(diag.String(), "workers=") {
		t.Errorf("no progress lines on the diagnostic stream: %q", diag.String())
	}
}

// TestFigureOutputSplit: rendering a figure puts the table on out and the
// stage-time summary on diag, with no cross-leakage of progress markers.
func TestFigureOutputSplit(t *testing.T) {
	b, out, diag := quickBench(t)
	if err := b.figure("2b"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2b") || !strings.Contains(out.String(), "mosmodel") {
		t.Errorf("figure table missing from out: %q", out.String())
	}
	if strings.Contains(out.String(), "workers=") || strings.Contains(out.String(), "stage ") {
		t.Errorf("progress/stage diagnostics leaked into out: %q", out.String())
	}
	if !strings.Contains(diag.String(), "stage ") {
		t.Errorf("stage-time summary missing from diag: %q", diag.String())
	}
}
