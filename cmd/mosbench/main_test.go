package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/workloads"
)

// quickBench builds a bench over the 9-layout quick protocol with captured
// writers, restricted to the fastest workload so tests stay in the
// sub-second range.
func quickBench(t *testing.T) (*bench, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	out, diag := &bytes.Buffer{}, &bytes.Buffer{}
	b := &bench{
		runner:    experiment.NewRunner(),
		workloads: []workloads.Workload{w},
		platforms: []arch.Platform{arch.SandyBridge},
		out:       out,
		diag:      diag,
	}
	b.runner.Proto = experiment.Quick
	b.stretch = 1
	return b, out, diag
}

// TestExportJSONStdoutPure pins the writer split: with -json, stdout must
// hold exactly one parseable JSON document — every progress line, stage
// summary, and exclusion note goes to stderr. A consumer piping
// `mosbench -json > data.json` depends on this.
func TestExportJSONStdoutPure(t *testing.T) {
	b, out, diag := quickBench(t)
	if err := b.exportJSON(); err != nil {
		t.Fatal(err)
	}
	var doc []struct {
		Workload, Platform string
		TLBSensitive       bool
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\nstdout: %q", err, out.String())
	}
	if dec.More() {
		t.Fatalf("stdout holds content after the JSON document: %q", out.String())
	}
	if len(doc) != 1 || doc[0].Workload != "gups/8GB" {
		t.Fatalf("decoded %+v", doc)
	}
	// The sweep's progress narration went to the diagnostic writer.
	if !strings.Contains(diag.String(), "workers=") {
		t.Errorf("no progress lines on the diagnostic stream: %q", diag.String())
	}
}

// TestFigureOutputSplit: rendering a figure puts the table on out and the
// stage-time summary on diag, with no cross-leakage of progress markers.
func TestFigureOutputSplit(t *testing.T) {
	b, out, diag := quickBench(t)
	if err := b.figure("2b"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 2b") || !strings.Contains(out.String(), "mosmodel") {
		t.Errorf("figure table missing from out: %q", out.String())
	}
	if strings.Contains(out.String(), "workers=") || strings.Contains(out.String(), "stage ") {
		t.Errorf("progress/stage diagnostics leaked into out: %q", out.String())
	}
	if !strings.Contains(diag.String(), "stage ") {
		t.Errorf("stage-time summary missing from diag: %q", diag.String())
	}
}

// TestCheckRegressionGates exercises the pure gate logic: direction-aware
// 10% tolerances, the absolute accuracy-contract bound, and the skip rules
// for unmeasured metrics and core-count mismatches.
func TestCheckRegressionGates(t *testing.T) {
	base := benchRow{PR: 5, Cores: 8, SweepMs: 1000, SampledSpeedup: 10, WorstSigErr: 0.004, WindowedSpeedup: 3.0}
	cases := []struct {
		name string
		rows []benchRow
		want int
	}{
		{"empty history", nil, 0},
		{"single clean row", []benchRow{base}, 0},
		{"identical rows pass", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, SampledSpeedup: 10, WorstSigErr: 0.004, WindowedSpeedup: 3.0}}, 0},
		{"within tolerance passes", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1090, SampledSpeedup: 9.1, WindowedSpeedup: 2.8}}, 0},
		{"sweep slowdown fails", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1200}}, 1},
		{"sampled speedup loss fails", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, SampledSpeedup: 8.5}}, 1},
		{"windowed speedup loss fails", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, WindowedSpeedup: 2.0}}, 1},
		{"windowed loss on different cores is skipped", []benchRow{base, {PR: 6, Cores: 1, SweepMs: 1000, WindowedSpeedup: 1.0}}, 0},
		{"accuracy contract is absolute", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 1000, WorstSigErr: 0.02}}, 1},
		{"unmeasured metrics are skipped", []benchRow{base, {PR: 6, Cores: 8}}, 0},
		{"multiple regressions all reported", []benchRow{base, {PR: 6, Cores: 8, SweepMs: 2000, SampledSpeedup: 5, WorstSigErr: 0.05, WindowedSpeedup: 1.0}}, 4},
		{"only last pair gates", []benchRow{{PR: 4, Cores: 8, SweepMs: 100}, base, {PR: 6, Cores: 8, SweepMs: 1000}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkRegression(tc.rows)
			if len(got) != tc.want {
				t.Errorf("%d violations %v, want %d", len(got), got, tc.want)
			}
		})
	}
}

// TestHistoryAppendRoundTrip: the ledger is append-only, atomic, and
// readable back; -append-row rejects malformed rows.
func TestHistoryAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	var out bytes.Buffer
	if err := runAppendRow(path, `{"pr": 1, "cores": 8, "sweep_ms": 1500}`, &out); err != nil {
		t.Fatal(err)
	}
	if err := runAppendRow(path, `{"pr": 2, "cores": 8, "sweep_ms": 1400, "sampled_speedup": 9.5}`, &out); err != nil {
		t.Fatal(err)
	}
	rows, err := loadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].PR != 1 || rows[1].SampledSpeedup != 9.5 {
		t.Fatalf("history after two appends: %+v", rows)
	}
	if err := runCheckRegression(path, &out); err != nil {
		t.Fatalf("clean history gated: %v", err)
	}

	if err := runAppendRow(path, `{"sweep_ms": 1}`, &out); err == nil {
		t.Error("row without pr accepted")
	}
	if err := runAppendRow(path, `{"pr": 3, "bogus": 1}`, &out); err == nil {
		t.Error("row with unknown field accepted")
	}
	if rows, _ = loadHistory(path); len(rows) != 2 {
		t.Fatalf("rejected rows mutated the ledger: %+v", rows)
	}

	// A regressing row makes the gate fail.
	if err := runAppendRow(path, `{"pr": 3, "cores": 8, "sweep_ms": 2800}`, &out); err != nil {
		t.Fatal(err)
	}
	if err := runCheckRegression(path, &out); err == nil {
		t.Fatal("2× sweep slowdown passed the regression gate")
	}
}
