package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mosaic/internal/experiment"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
)

// phaseReportSampling is the committed config behind -phase-report (and the
// root TestPhasedSampledAccuracy): unlike sim.DefaultSampling it must hold
// per-phase estimates of short, cache-friendly regimes to the envelope, so
// every parameter counters a specific failure mode:
//
//   - Period is prime. The dbindex kernels are built from power-of-two
//     geometry (node sizes, run lengths, entry strides), so their rare
//     events — 2MB-page crossings of a compaction output stream, say —
//     recur on power-of-two cycles. A power-of-two period phase-locks the
//     window schedule to those cycles and the estimator sees all of the
//     events or none of them; a prime period makes consecutive windows
//     sweep every phase of any power-of-two cycle (systematic sampling's
//     deterministic stand-in for SMARTS' random offsets).
//   - MeasureLen is large. Functional warmup advances TLB/cache state but
//     not the clock or walker queue, so each window's opening accesses
//     replay against a cold timing pipeline — a near-constant per-window
//     cycle deficit. The bias scales with window count, not coverage;
//     8K-access windows keep it under ~0.2% of even a cache-hit-heavy
//     window's cycles.
//   - WarmupLen covers the whole gap between windows, so functional state
//     never drifts: the only estimation error left is which windows were
//     measured, which is what the noise envelope models.
var phaseReportSampling = sim.Sampling{
	Period:      28657,
	MeasureLen:  8192,
	WarmupLen:   20465,
	PrologueLen: 8192,
}

// phaseReport runs the configured sweep twice — exact, then sampled — over
// phased workloads (the dbindex suite unless -workloads narrows it) and
// checks the per-phase accuracy contract: within every phase of every
// layout, each significant counter's sampled estimate must stay inside
// max(1%, 8/√events) of the exact replay, where events counts only that
// phase's accesses inside measurement windows. Stratified extrapolation
// makes this the same contract the headline obeys, restated per regime —
// the failure mode it guards is a phase transition hidden inside a skip
// stretch. With jsonOut the result is one JSON object on stdout
// (CI captures it as BENCH_phases.json); the exit status is nonzero when
// any phase escapes its envelope.
func (b *bench) phaseReport(s sim.Sampling, jsonOut bool) error {
	if !s.Enabled() {
		s = phaseReportSampling
	}
	// Both sweeps must replay identical traces; share a trace cache so the
	// workloads generate once.
	dir := b.runner.TraceDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mosbench-traces-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	run := func(sampling sim.Sampling) ([]*experiment.Dataset, error) {
		r := experiment.NewRunner()
		r.Proto = b.runner.Proto
		r.Parallelism = b.runner.Parallelism
		r.TraceDir = dir
		r.Sampling = sampling
		r.Windows = b.runner.Windows
		r.WindowWarm = b.runner.WindowWarm
		r.CheckpointDir = b.runner.CheckpointDir
		b.runner = r // progressLine reads coverage off the active runner
		dss, err := r.CollectAll(b.workloads, b.platforms, b.progressLine)
		fmt.Fprintln(b.diag)
		return dss, err
	}

	fmt.Fprintln(b.diag, "phase-report: exact sweep")
	exact, err := run(sim.Sampling{})
	if err != nil {
		return err
	}
	fmt.Fprintf(b.diag, "phase-report: sampled sweep (period=%d window=%d warmup=%d prologue=%d)\n",
		s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen)
	sampled, err := run(s)
	if err != nil {
		return err
	}

	rep, err := comparePhases(exact, sampled)
	if err != nil {
		return err
	}
	rep.Period, rep.Window, rep.Warmup, rep.Prologue = s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen
	rep.Stretch = b.stretch

	if jsonOut {
		enc := json.NewEncoder(b.out)
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(b.out, "Per-phase sampled replay vs. exact (period=%d window=%d warmup=%d prologue=%d, stretch %d×)\n",
			s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen, b.stretch)
		fmt.Fprintf(b.out, "  phases compared:      %d across %d datasets\n", len(rep.Phases), len(exact))
		fmt.Fprintf(b.out, "  significant counters: %d entries (≥%d sampled events), worst %.4f%% (%s)\n",
			rep.Significant, sigSampledEvents, rep.MaxErrPct, rep.MaxErrAt)
		fmt.Fprintf(b.out, "  noise envelope:       worst error/bound ratio %.2f (%s)\n",
			rep.WorstEnvelopeRatio, rep.WorstEnvelopeAt)
		for _, ph := range rep.Phases {
			fmt.Fprintf(b.out, "    %-44s worst %.4f%%  envelope %.2f\n",
				ph.Workload+"@"+ph.Platform+"/"+ph.Phase, ph.MaxRelErrPct, ph.EnvelopeRatio)
		}
	}
	if rep.WorstEnvelopeRatio > 1 {
		return fmt.Errorf("phase-report: %s escaped the per-phase sampling envelope (ratio %.2f)",
			rep.WorstEnvelopeAt, rep.WorstEnvelopeRatio)
	}
	return nil
}

// phaseErrRow aggregates one phase of one dataset over every layout.
type phaseErrRow struct {
	Workload string `json:"workload"`
	Platform string `json:"platform"`
	Phase    string `json:"phase"`
	// Significant counts the (layout, counter) entries of this phase with
	// at least sigSampledEvents events inside measurement windows.
	Significant int `json:"significant"`
	// MaxRelErrPct is the worst significant relative error in percent;
	// EnvelopeRatio the worst relErr/max(1%, 8/√events) over all entries.
	MaxRelErrPct  float64 `json:"max_rel_err_pct"`
	EnvelopeRatio float64 `json:"envelope_ratio"`
}

// phaseReportResult is the machine-readable shape of -phase-report — the
// CI bench job stores it verbatim as BENCH_phases.json.
type phaseReportResult struct {
	Kind     string `json:"kind"` // "phase-report"
	Period   int    `json:"period"`
	Window   int    `json:"window"`
	Warmup   int    `json:"warmup"`
	Prologue int    `json:"prologue"`
	Stretch  int    `json:"stretch"`
	// Significant and MaxErrPct aggregate across phases: the worst
	// significant per-phase relative error in percent is the ledger's
	// phase_maxerr_pct, gated absolutely by -check-regression.
	Significant        int           `json:"significant"`
	MaxErrPct          float64       `json:"phase_maxerr_pct"`
	MaxErrAt           string        `json:"phase_maxerr_at"`
	WorstEnvelopeRatio float64       `json:"worst_envelope_ratio"`
	WorstEnvelopeAt    string        `json:"worst_envelope_at"`
	Phases             []phaseErrRow `json:"phases"`
}

// phaseEventBasis returns the count of discrete events behind a counter —
// the effective sample size that bounds its sampling noise. For event
// counters that is the counter itself, but cycle counters aggregate
// variable per-event costs: C is a few hundred cycles per walk, so C×frac
// overstates the walk sample by orders of magnitude (and the envelope
// would demand precision the walk count cannot deliver); R accrues one
// cost term per access. Noise scales with 1/√(events measured), events in
// the underlying discrete unit.
func phaseEventBasis(name string, c pmu.Counters) uint64 {
	switch name {
	case "C":
		return c.M // one page walk per TLB miss
	case "R":
		return c.TLBLookups // one latency term per access
	}
	return counterValue(name, c)
}

// counterValue returns one named counter.
func counterValue(name string, c pmu.Counters) uint64 {
	for i, n := range counterNames {
		if n == name {
			return counterValues(c)[i]
		}
	}
	return 0
}

// comparePhases folds two sweeps' per-phase attributions into the error
// aggregates. Datasets are matched by workload@platform, layouts by name,
// and phase rows by position — the sweeps replayed the same traces, so the
// partitions coincide structurally; any shape mismatch is an error, not a
// skip, because a silently dropped phase would void the contract.
func comparePhases(exact, sampled []*experiment.Dataset) (phaseReportResult, error) {
	rep := phaseReportResult{Kind: "phase-report"}
	byKey := make(map[string]*experiment.Dataset, len(sampled))
	for _, ds := range sampled {
		byKey[ds.Workload+"@"+ds.Platform] = ds
	}
	rows := make(map[string]*phaseErrRow)
	var order []string
	for _, eds := range exact {
		key := eds.Workload + "@" + eds.Platform
		sds, ok := byKey[key]
		if !ok {
			return rep, fmt.Errorf("phase-report: no sampled dataset for %s", key)
		}
		if len(eds.Phases) == 0 {
			return rep, fmt.Errorf("phase-report: %s carries no phase attribution; pick phased workloads (the dbindex suite)", key)
		}
		layoutNames := make([]string, 0, len(eds.Phases))
		for layoutName := range eds.Phases {
			layoutNames = append(layoutNames, layoutName)
		}
		sort.Strings(layoutNames)
		for _, layoutName := range layoutNames {
			ephs := eds.Phases[layoutName]
			sphs, ok := sds.Phases[layoutName]
			if !ok || len(sphs) != len(ephs) {
				return rep, fmt.Errorf("phase-report: %s layout %s: phase rows %d exact vs %d sampled",
					key, layoutName, len(ephs), len(sphs))
			}
			for i, eph := range ephs {
				sph := sphs[i]
				if sph.Name != eph.Name {
					return rep, fmt.Errorf("phase-report: %s layout %s phase %d: %q exact vs %q sampled",
						key, layoutName, i, eph.Name, sph.Name)
				}
				rowKey := key + "/" + eph.Name
				row := rows[rowKey]
				if row == nil {
					row = &phaseErrRow{Workload: eds.Workload, Platform: eds.Platform, Phase: eph.Name}
					rows[rowKey] = row
					order = append(order, rowKey)
				}
				var frac float64
				if sph.TotalAccesses > 0 {
					frac = float64(sph.MeasuredAccesses) / float64(sph.TotalAccesses)
				}
				ev, sv := counterValues(eph.Counters), counterValues(sph.Counters)
				for j, name := range counterNames {
					if ev[j] < minExactCount {
						continue
					}
					diff := float64(sv[j]) - float64(ev[j])
					if diff < 0 {
						diff = -diff
					}
					rel := diff / float64(ev[j])
					at := rowKey + "/" + layoutName + "/" + name
					events := float64(phaseEventBasis(name, eph.Counters)) * frac
					if events <= 0 {
						continue
					}
					if events >= sigSampledEvents {
						row.Significant++
						rep.Significant++
						if 100*rel > row.MaxRelErrPct {
							row.MaxRelErrPct = 100 * rel
						}
						if 100*rel > rep.MaxErrPct {
							rep.MaxErrPct = 100 * rel
							rep.MaxErrAt = at
						}
					}
					if ratio := rel / sampledBound(events); ratio > row.EnvelopeRatio {
						row.EnvelopeRatio = ratio
						if ratio > rep.WorstEnvelopeRatio {
							rep.WorstEnvelopeRatio = ratio
							rep.WorstEnvelopeAt = at
						}
					}
				}
			}
		}
	}
	sort.Strings(order)
	for _, k := range order {
		rep.Phases = append(rep.Phases, *rows[k])
	}
	return rep, nil
}
