// Command mosbench reproduces the paper's evaluation: every figure and
// table of "Predicting Execution Times With Partial Simulations in Virtual
// Memory Research: Why and How" (MICRO 2020), regenerated on the modelled
// platforms.
//
// Usage:
//
//	mosbench -fig 2a          # one figure: 2a 2b 3 5 6 7 8 9 10 11
//	mosbench -table 6         # one table: 6 7 8
//	mosbench -case 1gb        # the §VII-D 1GB-pages case study
//	mosbench -all             # everything
//	mosbench -quick ...       # 9-layout protocol instead of 54 (fast)
//	mosbench -workloads a,b   # restrict the workload set
//	mosbench -platforms x,y   # restrict the platform set
//	mosbench -sample-period N # sampled replay: measure N/16 accesses per N
//	mosbench -sample-report   # sampled vs. exact: speedup + max rel. error
//	mosbench -phase-report    # per-phase sampled vs. exact error (dbindex)
//	mosbench -adaptive        # active-learning sweep: probe cheap, promote
//	                          # high-uncertainty layouts to exact replay
//	mosbench -adaptive-report # full protocol vs adaptive plan bake-off
//	mosbench -history-svg f   # render the benchmark ledger as an SVG chart
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/models"
	"mosaic/internal/plan"
	"mosaic/internal/pmu"
	"mosaic/internal/report"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

func main() {
	var (
		figFlag   = flag.String("fig", "", "figure to reproduce (2a, 2b, 3, 5, 6, 7, 8, 9, 10, 11)")
		tableFlag = flag.String("table", "", "table to reproduce (6, 7, 8)")
		caseFlag  = flag.String("case", "", "case study to run (1gb)")
		allFlag   = flag.Bool("all", false, "reproduce every figure and table")
		quick     = flag.Bool("quick", false, "use the 9-layout quick protocol instead of the 54-layout standard")
		wlFlag    = flag.String("workloads", "", "comma-separated workload subset (default: all 19)")
		platFlag  = flag.String("platforms", "", "comma-separated platform subset (default: Broadwell,Haswell,SandyBridge)")
		parallel  = flag.Int("parallelism", 0, "worker goroutines for the measurement sweep (default: GOMAXPROCS)")
		traceDir  = flag.String("tracedir", "", "directory for caching workload traces across runs")
		jsonFlag  = flag.Bool("json", false, "dump the collected datasets as JSON instead of rendering figures")
		svgDir    = flag.String("svg", "", "also write per-figure SVG charts into this directory")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")

		samplePeriod = flag.Int("sample-period", 0,
			"sampled replay: accesses per sampling period (0 = exact replay)")
		sampleWindow = flag.Int("sample-window", 0,
			"sampled replay: measured accesses per period (default: period/16)")
		sampleWarmup = flag.Int("sample-warmup", -1,
			"sampled replay: functional-warmup accesses before each window (default: the window length)")
		samplePrologue = flag.Int("sample-prologue", -1,
			"sampled replay: exactly-measured opening accesses, kept out of the extrapolation (default: period/2)")
		sampleRpt = flag.Bool("sample-report", false,
			"run the sweep exact and sampled, report replay speedup and max per-counter relative error (with -json: machine-readable)")
		phaseRpt = flag.Bool("phase-report", false,
			"run phased workloads (default: the dbindex suite) exact and sampled, check each phase against the max(1%, 8/sqrt(events)) contract (with -json: BENCH_phases.json shape); exits nonzero on breach")
		stretch = flag.Int("stretch", 1,
			"multiply every workload's trace length (accesses) by this factor (sweep-scale traces for -sample-report; the committed numbers use 32)")

		windows = flag.Int("windows", 0,
			"parallel windowed replay: split every replay into this many chunks run concurrently (0 or 1 = off; exact unless -windows-warm)")
		windowsWarm = flag.Bool("windows-warm", false,
			"windowed replay reconstructs chunk-boundary state by functional warmup instead of checkpoints (approximate, no checkpoint cache)")
		ckptCache = flag.String("checkpoint-cache", "",
			"directory for caching MOSCKPT01 window-boundary checkpoints across runs (exact windowed replay)")

		adaptive = flag.Bool("adaptive", false,
			"plan the sweep adaptively: probe every layout cheaply, promote only high-uncertainty layouts to exact replay")
		errorTarget = flag.Float64("error-target", 0,
			"adaptive: stop promoting once the predicted max error falls to this fraction (0 = spend the whole budget)")
		budget = flag.Int("budget", 0,
			"adaptive: max exact layout measurements, anchors included (0 = one fifth of the protocol)")
		adaptiveRpt = flag.Bool("adaptive-report", false,
			"bake-off: full exact protocol vs adaptive plan per pair (with -json: BENCH_adaptive.json rows); exits nonzero when the accuracy/cost contract fails")

		historyPath = flag.String("history", "BENCH_history.json",
			"path of the append-only per-PR benchmark ledger")
		appendRow = flag.String("append-row", "",
			"append this JSON benchmark row to -history and exit")
		checkReg = flag.Bool("check-regression", false,
			"gate the last -history row against the previous one (>10% slowdown of a tracked metric fails) and exit")
		historySVG = flag.String("history-svg", "",
			"render the -history ledger as a trajectory SVG chart to this path and exit")
	)
	flag.Parse()

	// The ledger modes run and exit before any sweep machinery spins up.
	if *appendRow != "" {
		if err := runAppendRow(*historyPath, *appendRow, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *checkReg {
		if err := runCheckRegression(*historyPath, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *historySVG != "" {
		if err := runHistorySVG(*historyPath, *historySVG, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// The profile is written on the way out (after defers run), so it
		// reflects the heap at the end of the sweep.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	app := &bench{runner: experiment.NewRunner(), out: os.Stdout, diag: os.Stderr}
	if *quick {
		app.runner.Proto = experiment.Quick
	}
	if *parallel > 0 {
		app.runner.Parallelism = *parallel
	}
	app.runner.TraceDir = *traceDir
	app.runner.Sampling = buildSampling(*samplePeriod, *sampleWindow, *sampleWarmup, *samplePrologue)
	app.runner.Windows = *windows
	app.runner.WindowWarm = *windowsWarm
	app.runner.CheckpointDir = *ckptCache
	app.svgDir = *svgDir
	app.stretch = max(1, *stretch)
	var err error
	if app.workloads, err = selectWorkloads(*wlFlag); err != nil {
		fatal(err)
	}
	if *phaseRpt && *wlFlag == "" {
		// The per-phase contract needs phased traces; the dbindex suite is
		// the bundled phased set.
		app.workloads = workloads.DBIndex()
	}
	for i, w := range app.workloads {
		app.workloads[i] = workloads.Stretched(w, app.stretch)
	}
	if app.platforms, err = selectPlatforms(*platFlag); err != nil {
		fatal(err)
	}

	planCfg := plan.Config{
		ErrorTarget:   *errorTarget,
		MaxPromotions: *budget,
		// An explicit -sample-period overrides the planner's probe plan.
		ProbeSampling: app.runner.Sampling,
	}
	switch {
	case *adaptiveRpt:
		err = app.adaptiveReport(planCfg, *jsonFlag)
	case *adaptive:
		err = app.adaptiveRun(planCfg, *jsonFlag)
	case *sampleRpt:
		err = app.sampleReport(app.runner.Sampling, *jsonFlag)
	case *phaseRpt:
		err = app.phaseReport(app.runner.Sampling, *jsonFlag)
	case *jsonFlag:
		err = app.exportJSON()
	case *allFlag:
		err = app.all()
	case *figFlag != "":
		err = app.figure(*figFlag)
	case *tableFlag != "":
		err = app.table(*tableFlag)
	case *caseFlag != "":
		err = app.caseStudy(*caseFlag)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mosbench:", err)
	os.Exit(1)
}

// buildSampling folds the four -sample-* flags into a config: -sample-period
// alone picks the conventional 1/16 coverage (window = period/16, warmup =
// window) with a half-period exact prologue, mirroring the shape of
// sim.DefaultSampling.
func buildSampling(period, window, warmup, prologue int) sim.Sampling {
	if period <= 0 {
		return sim.Sampling{}
	}
	s := sim.Sampling{Period: period, MeasureLen: window, WarmupLen: warmup, PrologueLen: prologue}
	if s.MeasureLen <= 0 {
		s.MeasureLen = max(1, period/16)
	}
	if s.WarmupLen < 0 {
		s.WarmupLen = s.MeasureLen
	}
	if s.PrologueLen < 0 {
		s.PrologueLen = period / 2
	}
	return s
}

func selectWorkloads(list string) ([]workloads.Workload, error) {
	if list == "" {
		return workloads.All(), nil
	}
	var out []workloads.Workload
	for _, name := range strings.Split(list, ",") {
		w, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func selectPlatforms(list string) ([]arch.Platform, error) {
	if list == "" {
		return arch.Experimental, nil
	}
	var out []arch.Platform
	for _, name := range strings.Split(list, ",") {
		p, err := arch.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

type bench struct {
	runner    *experiment.Runner
	workloads []workloads.Workload
	platforms []arch.Platform
	collected []*experiment.Dataset
	svgDir    string
	stretch   int
	// out receives results (tables, charts, JSON); diag receives progress
	// lines and stage summaries. main wires them to stdout/stderr, so
	// `mosbench -json > data.json` stays parseable no matter how chatty the
	// sweep is; tests wire buffers to pin that split.
	out  io.Writer
	diag io.Writer
}

// progressLine renders one sweep progress report on stderr: stage, job
// counts, effective worker count, elapsed time, and the scheduler's ETA.
// Under sampled replay the replay stage also shows how many trace accesses
// were measured at full fidelity versus skipped (warmed or jumped over).
func (b *bench) progressLine(p sim.Progress) {
	eta := "    -"
	if p.ETA > 0 {
		eta = fmt.Sprintf("%4.0fs", p.ETA.Seconds())
	}
	coverage := ""
	if b.runner.Sampling.Enabled() && p.Stage == sim.StageReplay.String() {
		measured, skipped := b.runner.SampledProgress()
		coverage = fmt.Sprintf(" meas=%s skip=%s", fmtCount(measured), fmtCount(skipped))
	}
	fmt.Fprintf(b.diag, "\r[%-7s %4d/%d] workers=%-2d %6.1fs ETA %s%s  %-44.44s",
		p.Stage, p.Done, p.Total, p.Workers, p.Elapsed.Seconds(), eta, coverage, p.Label)
}

// fmtCount renders an access count compactly (12.3M-style).
func fmtCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// collectAll measures every (workload, platform) dataset through the
// sweep-wide scheduler, reporting staged progress on stderr, and returns
// the TLB-sensitive ones (the paper's inclusion criterion).
func (b *bench) collectAll() ([]*experiment.Dataset, error) {
	if b.collected != nil {
		return b.collected, nil
	}
	all, err := b.runner.CollectAll(b.workloads, b.platforms, b.progressLine)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(b.diag)
	var out []*experiment.Dataset
	for _, ds := range all {
		if ds.TLBSensitive {
			out = append(out, ds)
		} else {
			fmt.Fprintf(b.diag, "  (excluding %s on %s: not TLB-sensitive)\n", ds.Workload, ds.Platform)
		}
	}
	for _, st := range b.runner.StageTimes() {
		if st.Count > 0 {
			fmt.Fprintf(b.diag, "  stage %-7s %4d× %8.1fs total\n", st.Stage, st.Count, st.Total.Seconds())
		}
	}
	b.collected = out
	return out, nil
}

func (b *bench) dataset(workload, platform string) (*experiment.Dataset, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	p, err := arch.ByName(platform)
	if err != nil {
		return nil, err
	}
	return b.runner.Collect(w, p)
}

// exportJSON dumps every collected dataset (sensitive and insensitive) as
// one JSON document on stdout — the raw material for external analysis.
func (b *bench) exportJSON() error {
	type entry struct {
		Workload     string
		Platform     string
		TLBSensitive bool
		Samples      []pmuSampleJSON
		Sample1G     pmuSampleJSON
	}
	all, err := b.runner.CollectAll(b.workloads, b.platforms, b.progressLine)
	if err != nil {
		return err
	}
	fmt.Fprintln(b.diag)
	var out []entry
	for _, ds := range all {
		e := entry{
			Workload:     ds.Workload,
			Platform:     ds.Platform,
			TLBSensitive: ds.TLBSensitive,
			Sample1G:     sampleJSON(ds.Sample1G),
		}
		for _, s := range ds.Samples {
			e.Samples = append(e.Samples, sampleJSON(s))
		}
		out = append(out, e)
	}
	enc := json.NewEncoder(b.out)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

type pmuSampleJSON struct {
	Layout  string
	H, M, C float64
	R       float64
}

func sampleJSON(s pmu.Sample) pmuSampleJSON {
	return pmuSampleJSON{Layout: s.Layout, H: s.H, M: s.M, C: s.C, R: s.R}
}

func (b *bench) all() error {
	for _, f := range []string{"2a", "2b", "3", "5", "6", "7", "8", "9", "10", "11"} {
		if err := b.figure(f); err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
	}
	for _, t := range []string{"6", "7", "8"} {
		if err := b.table(t); err != nil {
			return fmt.Errorf("table %s: %w", t, err)
		}
	}
	return b.caseStudy("1gb")
}

func (b *bench) figure(name string) error {
	switch name {
	case "2a", "2b":
		all, err := b.collectAll()
		if err != nil {
			return err
		}
		worst, err := experiment.Figure2(all)
		if err != nil {
			return err
		}
		title := "Figure 2a: maximal error of preexisting models (all workloads & machines)"
		names := models.PriorNames
		if name == "2b" {
			title = "Figure 2b: maximal error of the new models (all workloads & machines)"
			names = models.NewNames
		}
		fmt.Fprintln(b.out, report.ModelErrorTable(title, worst, names))
		if b.svgDir != "" {
			var vals []float64
			for _, n := range names {
				vals = append(vals, worst[n])
			}
			if err := os.MkdirAll(b.svgDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(b.svgDir, "figure"+name+".svg")
			if err := os.WriteFile(path, []byte(report.SVGBars(title, names, vals, 640, 360)), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(b.diag, "wrote %s\n", path)
		}
	case "3":
		return b.curve("spec06/mcf", "SandyBridge",
			"Figure 3: the linear model cannot predict spec06/mcf; Mosmodel can",
			[]string{"poly1", "mosmodel"})
	case "5", "6":
		all, err := b.collectAll()
		if err != nil {
			return err
		}
		geo := name == "6"
		kind := "maximal"
		if geo {
			kind = "geomean"
		}
		for _, p := range b.platforms {
			pb, err := experiment.PerBenchmark(p.Name, all)
			if err != nil {
				return err
			}
			fmt.Fprintln(b.out, report.PerBenchmarkTable(
				fmt.Sprintf("Figure %s (%s): per-benchmark %s error", name, p.Name, kind), pb, geo))
		}
	case "7":
		if err := b.curve("gapbs/sssp-twitter", "SandyBridge",
			"Figure 7: the Basu model is optimistic for gapbs/sssp-twitter",
			[]string{"basu"}); err != nil {
			return err
		}
		ds, err := b.dataset("gapbs/sssp-twitter", "SandyBridge")
		if err != nil {
			return err
		}
		under, err := experiment.UnderpredictionAtLowC(ds, "basu")
		if err != nil {
			return err
		}
		fmt.Fprintf(b.out, "Basu underpredicts the lowest-walk-cycles layout by %s (paper: 42%%)\n\n",
			report.Pct(under))
	case "8":
		return b.curve("spec06/omnetpp", "SandyBridge",
			"Figure 8: linear regression describes spec06/omnetpp well",
			[]string{"poly1"})
	case "9":
		if err := b.curve("spec17/xalancbmk_s", "Broadwell",
			"Figure 9: the spec17/xalancbmk_s model slope exceeds 1",
			[]string{"poly1"}); err != nil {
			return err
		}
		ds, err := b.dataset("spec17/xalancbmk_s", "Broadwell")
		if err != nil {
			return err
		}
		slope, err := experiment.FittedSlope(ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(b.out, "fitted poly1 slope α = %.2f (paper: α > 1)\n\n", slope)
	case "10":
		return b.curve("gups/16GB", "SandyBridge",
			"Figure 10: gups/16GB needs a higher-order polynomial",
			[]string{"poly1", "poly2", "poly3"})
	case "11":
		ds, err := b.dataset("gapbs/pr-twitter", "SandyBridge")
		if err != nil {
			return err
		}
		res, err := experiment.CaseStudy1G(ds)
		if err != nil {
			return err
		}
		fmt.Fprintln(b.out, "Figure 11: predicting the 1GB-pages layout of gapbs/pr-twitter (SandyBridge)")
		t := report.NewTable("model", "error on 1GB prediction")
		for _, name := range []string{"yaniv", "mosmodel"} {
			t.AddRow(name, report.Pct(res[name]))
		}
		fmt.Fprintln(b.out, t.String())
	default:
		return fmt.Errorf("unknown figure %q", name)
	}
	return nil
}

func (b *bench) curve(workload, platform, title string, modelNames []string) error {
	ds, err := b.dataset(workload, platform)
	if err != nil {
		return err
	}
	cv, err := experiment.CurveFor(ds, modelNames)
	if err != nil {
		return err
	}
	fmt.Fprintln(b.out, title)
	runes := map[string]rune{"poly1": '-', "poly2": '2', "poly3": '3', "mosmodel": '*', "basu": 'b', "yaniv": 'y'}
	fmt.Fprintln(b.out, report.Chart(cv, 72, 20, runes))
	if b.svgDir != "" {
		if err := os.MkdirAll(b.svgDir, 0o755); err != nil {
			return err
		}
		name := strings.NewReplacer("/", "_", " ", "_").Replace(workload+"_"+platform) + ".svg"
		path := filepath.Join(b.svgDir, name)
		if err := os.WriteFile(path, []byte(report.SVGChart(cv, 720, 440)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(b.diag, "wrote %s\n", path)
	}
	return nil
}

func (b *bench) table(name string) error {
	switch name {
	case "6":
		all, err := b.collectAll()
		if err != nil {
			return err
		}
		cv, err := experiment.Table6(all, 6)
		if err != nil {
			return err
		}
		fmt.Fprintln(b.out, report.ModelErrorTable(
			"Table 6: maximal K-fold cross-validation errors of the new models",
			cv, models.NewNames))
	case "7":
		ds, err := b.dataset("spec17/xalancbmk_s", "Broadwell")
		if err != nil {
			return err
		}
		rows, err := experiment.Table7(ds)
		if err != nil {
			return err
		}
		fmt.Fprintln(b.out, report.Table7Text(ds, rows))
	case "8":
		all, err := b.collectAll()
		if err != nil {
			return err
		}
		rows, err := experiment.Table8(all)
		if err != nil {
			return err
		}
		var platforms []string
		for _, p := range b.platforms {
			platforms = append(platforms, p.Name)
		}
		fmt.Fprintln(b.out, report.Table8Text(rows, platforms))
	default:
		return fmt.Errorf("unknown table %q", name)
	}
	return nil
}

func (b *bench) caseStudy(name string) error {
	if name != "1gb" {
		return fmt.Errorf("unknown case study %q", name)
	}
	all, err := b.collectAll()
	if err != nil {
		return err
	}
	worst := make(map[string]float64)
	for _, ds := range all {
		res, err := experiment.CaseStudy1G(ds)
		if err != nil {
			return err
		}
		for m, e := range res {
			if e > worst[m] {
				worst[m] = e
			}
		}
	}
	fmt.Fprintln(b.out, "Case study (§VII-D): worst error predicting the held-out 1GB-pages layout")
	names := make([]string, 0, len(worst))
	for m := range worst {
		names = append(names, m)
	}
	sort.Strings(names)
	t := report.NewTable("model", "worst 1GB-prediction error")
	for _, m := range names {
		t.AddRow(m, report.Pct(worst[m]))
	}
	fmt.Fprintln(b.out, t.String())
	return nil
}
