package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"mosaic/internal/experiment"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
)

// minExactCount is the smallest exact counter value that participates in
// the relative-error aggregate. Counters below it (a handful of stray TLB
// misses under a 1GB layout, say) turn one-count absolute differences into
// huge relative ones while being irrelevant to any model fitted on the
// dataset, so the report tracks them only as absolute skips.
const minExactCount = 1000

// sigSampledEvents is the significance threshold of the accuracy contract
// (docs/timing-model.md): a counter with at least this many of its events
// inside measurement windows has sampling noise below 1%, so it is held to
// the strict 1% bound. Counters below the threshold are bounded by the
// noise envelope instead.
const sigSampledEvents = 40_000

// sampledBound is the per-counter tolerance: 1% once a counter is
// statistically significant, and the sampling-noise envelope K/sqrt(events)
// below that (K=8 covers the bundled workloads' empirical ~2× Poisson
// overdispersion with margin).
func sampledBound(sampledEvents float64) float64 {
	return math.Max(0.01, 8/math.Sqrt(sampledEvents))
}

// sampleReport runs the configured sweep twice — exact, then under the
// sampling config (the flag defaults fall back to sim.DefaultSampling) —
// and reports the replay-stage speedup plus the error aggregates of the
// accuracy contract: the worst relative error over statistically
// significant counters (the headline ≤1% bound), the worst noise-envelope
// ratio over all counters, and the raw per-counter maxima. With jsonOut
// the report is a single JSON object on stdout, suitable for appending to
// a benchmark log. Combine with -stretch so the traces are long enough for
// the sampler to matter (the committed numbers use -stretch 32).
func (b *bench) sampleReport(s sim.Sampling, jsonOut bool) error {
	if !s.Enabled() {
		s = sim.DefaultSampling
	}
	// Both sweeps must replay identical traces; share a trace cache so the
	// workloads generate once.
	dir := b.runner.TraceDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mosbench-traces-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	run := func(sampling sim.Sampling) ([]*experiment.Dataset, float64, error) {
		r := experiment.NewRunner()
		r.Proto = b.runner.Proto
		r.Parallelism = b.runner.Parallelism
		r.TraceDir = dir
		r.Sampling = sampling
		r.Windows = b.runner.Windows
		r.WindowWarm = b.runner.WindowWarm
		r.CheckpointDir = b.runner.CheckpointDir
		b.runner = r // progressLine reads coverage off the active runner
		dss, err := r.CollectAll(b.workloads, b.platforms, b.progressLine)
		fmt.Fprintln(b.diag)
		if err != nil {
			return nil, 0, err
		}
		var replay float64
		for _, st := range r.StageTimes() {
			if st.Stage == sim.StageReplay {
				replay = st.Total.Seconds()
			}
		}
		return dss, replay, nil
	}

	fmt.Fprintln(b.diag, "sample-report: exact sweep")
	exact, exactSec, err := run(sim.Sampling{})
	if err != nil {
		return err
	}
	fmt.Fprintf(b.diag, "sample-report: sampled sweep (period=%d window=%d warmup=%d prologue=%d)\n",
		s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen)
	sampled, sampledSec, err := run(s)
	if err != nil {
		return err
	}

	rep := compareSweeps(exact, sampled)
	rep.Period, rep.Window, rep.Warmup, rep.Prologue = s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen
	rep.Stretch = b.stretch
	rep.ExactReplaySeconds = exactSec
	rep.SampledReplaySeconds = sampledSec
	if sampledSec > 0 {
		rep.Speedup = exactSec / sampledSec
	}

	if jsonOut {
		enc := json.NewEncoder(b.out)
		return enc.Encode(rep)
	}
	fmt.Fprintf(b.out, "Sampled replay vs. exact (period=%d window=%d warmup=%d prologue=%d, stretch %d×)\n",
		s.Period, s.MeasureLen, s.WarmupLen, s.PrologueLen, b.stretch)
	fmt.Fprintf(b.out, "  measured fraction:    %.2f%%\n", 100*rep.MeasuredFraction)
	fmt.Fprintf(b.out, "  replay time:          %.2fs exact, %.2fs sampled (%.1f× speedup)\n",
		rep.ExactReplaySeconds, rep.SampledReplaySeconds, rep.Speedup)
	fmt.Fprintf(b.out, "  significant counters: %d entries (≥%d sampled events), worst %.4f%% (%s)\n",
		rep.Significant, sigSampledEvents, 100*rep.MaxRelErrSignificant, rep.MaxRelErrSignificantAt)
	fmt.Fprintf(b.out, "  noise envelope:       worst error/bound ratio %.2f (%s)\n",
		rep.WorstEnvelopeRatio, rep.WorstEnvelopeAt)
	fmt.Fprintf(b.out, "  max relative error:   %.4f%% (%s)\n", 100*rep.MaxRelError, rep.MaxRelErrorAt)
	fmt.Fprintln(b.out, "  per-counter max relative error:")
	for _, name := range counterNames {
		if e, ok := rep.PerCounter[name]; ok {
			fmt.Fprintf(b.out, "    %-18s %.4f%%\n", name, 100*e)
		}
	}
	return nil
}

// sampleReportResult is the machine-readable shape of the report.
type sampleReportResult struct {
	Kind                 string // "sample-report", to tag entries in mixed logs
	Period               int
	Window               int
	Warmup               int
	Prologue             int
	Stretch              int
	MeasuredFraction     float64
	ExactReplaySeconds   float64
	SampledReplaySeconds float64
	Speedup              float64
	// Significant is the number of (dataset, layout, counter) entries with
	// at least sigSampledEvents events inside measurement windows;
	// MaxRelErrSignificant is their worst |sampled-exact|/exact — the
	// accuracy contract holds it to ≤ 1% — at MaxRelErrSignificantAt
	// (workload@platform/layout/counter).
	Significant            int
	MaxRelErrSignificant   float64
	MaxRelErrSignificantAt string
	// WorstEnvelopeRatio is the worst relErr/bound ratio over all compared
	// entries, where bound = max(1%, 8/sqrt(sampled events)); a value > 1
	// means some counter escaped the sampling-noise envelope.
	WorstEnvelopeRatio float64
	WorstEnvelopeAt    string
	// MaxRelError is the worst raw relative error over every counter of
	// every layout of every dataset (exact values < minExactCount excluded),
	// significant or not — dominated by rare counters whose errors are pure
	// sampling noise.
	MaxRelError   float64
	MaxRelErrorAt string
	// PerCounter maps counter name to its own worst relative error.
	PerCounter map[string]float64
}

// counterNames fixes the report order of pmu.Counters fields.
var counterNames = []string{
	"R", "H", "M", "C", "Instructions",
	"L1DLoadsProgram", "L1DLoadsWalker",
	"L2LoadsProgram", "L2LoadsWalker",
	"L3LoadsProgram", "L3LoadsWalker",
	"DRAMLoadsProgram", "DRAMLoadsWalker",
	"TLBLookups",
}

// counterValues flattens a counter set in counterNames order.
func counterValues(c pmu.Counters) []uint64 {
	return []uint64{
		c.R, c.H, c.M, c.C, c.Instructions,
		c.L1DLoadsProgram, c.L1DLoadsWalker,
		c.L2LoadsProgram, c.L2LoadsWalker,
		c.L3LoadsProgram, c.L3LoadsWalker,
		c.DRAMLoadsProgram, c.DRAMLoadsWalker,
		c.TLBLookups,
	}
}

// compareSweeps folds two sweeps' datasets into the error aggregates.
// Datasets and layouts are matched by name; the sweeps ran the same
// protocol over the same traces, so the sets coincide. The sampled-event
// count behind the significance split is estimated per dataset as the
// exact count scaled by that dataset's measured fraction.
func compareSweeps(exact, sampled []*experiment.Dataset) sampleReportResult {
	rep := sampleReportResult{Kind: "sample-report", PerCounter: make(map[string]float64)}
	byKey := make(map[string]*experiment.Dataset, len(sampled))
	for _, ds := range sampled {
		byKey[ds.Workload+"@"+ds.Platform] = ds
	}
	var measuredSum, totalSum uint64
	for _, eds := range exact {
		key := eds.Workload + "@" + eds.Platform
		sds, ok := byKey[key]
		if !ok {
			continue
		}
		measuredSum += sds.MeasuredAccesses
		totalSum += sds.TotalAccesses
		var frac float64
		if sds.TotalAccesses > 0 {
			frac = float64(sds.MeasuredAccesses) / float64(sds.TotalAccesses)
		}
		for layoutName, ec := range eds.Counters {
			sc, ok := sds.Counters[layoutName]
			if !ok {
				continue
			}
			ev, sv := counterValues(ec), counterValues(sc)
			for i, name := range counterNames {
				if ev[i] < minExactCount {
					continue
				}
				diff := float64(sv[i]) - float64(ev[i])
				if diff < 0 {
					diff = -diff
				}
				rel := diff / float64(ev[i])
				at := key + "/" + layoutName + "/" + name
				if events := float64(ev[i]) * frac; events > 0 {
					if events >= sigSampledEvents {
						rep.Significant++
						if rel > rep.MaxRelErrSignificant {
							rep.MaxRelErrSignificant = rel
							rep.MaxRelErrSignificantAt = at
						}
					}
					if ratio := rel / sampledBound(events); ratio > rep.WorstEnvelopeRatio {
						rep.WorstEnvelopeRatio = ratio
						rep.WorstEnvelopeAt = at
					}
				}
				if rel > rep.PerCounter[name] {
					rep.PerCounter[name] = rel
				}
				if rel > rep.MaxRelError {
					rep.MaxRelError = rel
					rep.MaxRelErrorAt = at
				}
			}
		}
	}
	if totalSum > 0 {
		rep.MeasuredFraction = float64(measuredSum) / float64(totalSum)
	}
	return rep
}
