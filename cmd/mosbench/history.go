package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"mosaic/internal/report"
)

// BENCH_history.json is the repo's append-only performance ledger: one row
// per PR, written by the CI bench job, read back by -check-regression to
// gate the next PR. Keeping the whole history (rather than only the last
// run) makes slow drifts visible — a sequence of 9% slowdowns each passes
// the gate, but the file shows the trend.

// benchRow is one PR's tracked metrics. Zero values mean "not measured by
// that PR" (e.g. windowed replay predates nothing before PR 6) and are
// skipped by the regression gate.
type benchRow struct {
	PR int `json:"pr"`
	// Cores records the host parallelism behind the timings; speedup-type
	// metrics are only comparable between rows with the same core count.
	Cores int `json:"cores,omitempty"`
	// SweepMs is BenchmarkSweepQuick's per-iteration wall time.
	SweepMs float64 `json:"sweep_ms,omitempty"`
	// SampledSpeedup is the -sample-report replay speedup (exact/sampled).
	SampledSpeedup float64 `json:"sampled_speedup,omitempty"`
	// WorstSigErr is the -sample-report worst relative error over
	// statistically significant counters (the ≤1% accuracy contract).
	WorstSigErr float64 `json:"worst_sig_err,omitempty"`
	// WindowedSpeedup is BenchmarkSweepQuickWindowed's -windows K speedup
	// over -windows 1 (bounded by Cores).
	WindowedSpeedup float64 `json:"windowed_speedup,omitempty"`
	// TraceLoadMs is the wall time of loading the cached gups/8GB trace
	// (the serve daemon's cold-start dominator).
	TraceLoadMs float64 `json:"trace_load_ms,omitempty"`
	// PredictP99Ms is the serve layer's p99 /v1/predict latency under the
	// concurrent-load test.
	PredictP99Ms float64 `json:"predict_p99_ms,omitempty"`
	// AdaptiveCostRatio is the planned sweep's measured-access cost
	// relative to the full exact protocol (the -adaptive-report bake-off,
	// worst pair). Gated absolutely against adaptiveCostCap, not
	// relatively: the ratio is a contract, not a trend.
	AdaptiveCostRatio float64 `json:"adaptive_cost_ratio,omitempty"`
	// ClusterSpeedup is the distributed sweep fabric's 2-worker wall time
	// advantage over the same sweep on 1 worker (BENCH_cluster.json). Like
	// WindowedSpeedup it is bounded by Cores — a 1-core host records the
	// fabric's coordination overhead (< 1×) honestly.
	ClusterSpeedup float64 `json:"cluster_speedup,omitempty"`
	// PhaseMaxErr is the -phase-report worst significant per-phase relative
	// error in percent (BENCH_phases.json phase_maxerr_pct). Gated
	// absolutely against phaseMaxErrBound like WorstSigErr: the per-phase
	// accuracy contract is a bound, not a trend.
	PhaseMaxErr float64 `json:"phase_maxerr_pct,omitempty"`
}

// regressionTol is the gate: a tracked metric may degrade by at most this
// fraction between consecutive rows.
const regressionTol = 0.10

// sigErrBound is the absolute ceiling for WorstSigErr — the sampled
// accuracy contract's 1% bound. Relative comparison is wrong for an error
// metric (a 0.1% → 0.12% change is noise, not a regression), so the gate
// checks the contract instead.
const sigErrBound = 0.01

// adaptiveCostBound is the absolute ceiling for AdaptiveCostRatio — the
// adaptive bake-off's cost contract: a planned sweep spends at most a
// third of the full protocol's measured accesses.
const adaptiveCostBound = 1.0 / 3.0

// phaseMaxErrBound is the absolute ceiling for PhaseMaxErr, in percent —
// the per-phase restatement of the 1% accuracy contract.
const phaseMaxErrBound = 1.0

// loadHistory reads the ledger; a missing file is an empty history.
func loadHistory(path string) ([]benchRow, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rows []benchRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("history %s: %w", path, err)
	}
	return rows, nil
}

// appendHistory appends one row and rewrites the ledger atomically
// (same-directory temp + rename, like every cache file in the repo).
func appendHistory(path string, row benchRow) error {
	rows, err := loadHistory(path)
	if err != nil {
		return err
	}
	if row.Cores == 0 {
		row.Cores = runtime.NumCPU()
	}
	rows = append(rows, row)
	raw, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(append(raw, '\n')); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// checkRegression compares the ledger's last row against the previous one
// and returns one message per violated gate. Lower-is-better metrics
// (sweep time) may grow by at most regressionTol; higher-is-better metrics
// (speedups) may shrink by at most regressionTol; the worst significant
// error must stay within the accuracy contract's absolute bound. Metrics
// absent (zero) in either row are skipped — a PR that didn't re-measure a
// metric neither passes nor fails it. Speedups are additionally skipped
// when the two rows ran on different core counts, where the comparison is
// meaningless.
func checkRegression(rows []benchRow) []string {
	var out []string
	if n := len(rows); n >= 1 {
		cur := rows[n-1]
		if cur.WorstSigErr > sigErrBound {
			out = append(out, fmt.Sprintf(
				"PR %d: worst significant sampled error %.4f%% exceeds the %.0f%% accuracy contract",
				cur.PR, 100*cur.WorstSigErr, 100*sigErrBound))
		}
		if cur.AdaptiveCostRatio > adaptiveCostBound {
			out = append(out, fmt.Sprintf(
				"PR %d: adaptive sweep cost ratio %.3f exceeds the %.3f contract",
				cur.PR, cur.AdaptiveCostRatio, adaptiveCostBound))
		}
		if cur.PhaseMaxErr > phaseMaxErrBound {
			out = append(out, fmt.Sprintf(
				"PR %d: worst per-phase significant error %.4f%% exceeds the %.0f%% accuracy contract",
				cur.PR, cur.PhaseMaxErr, phaseMaxErrBound))
		}
		if n >= 2 {
			prev := rows[n-2]
			for _, m := range []struct {
				name      string
				prev, cur float64
			}{
				{"quick sweep", prev.SweepMs, cur.SweepMs},
				{"trace load", prev.TraceLoadMs, cur.TraceLoadMs},
				{"predict p99", prev.PredictP99Ms, cur.PredictP99Ms},
			} {
				if m.prev <= 0 || m.cur <= 0 {
					continue
				}
				if m.cur > m.prev*(1+regressionTol) {
					out = append(out, fmt.Sprintf(
						"PR %d: %s %.1fms is %.0f%% slower than PR %d's %.1fms (gate: %.0f%%)",
						cur.PR, m.name, m.cur, 100*(m.cur/m.prev-1), prev.PR, m.prev, 100*regressionTol))
				}
			}
			comparable := prev.Cores == cur.Cores
			for _, m := range []struct {
				name       string
				prev, cur  float64
				coresBound bool
			}{
				{"sampled replay speedup", prev.SampledSpeedup, cur.SampledSpeedup, false},
				{"windowed replay speedup", prev.WindowedSpeedup, cur.WindowedSpeedup, true},
				{"cluster sweep speedup", prev.ClusterSpeedup, cur.ClusterSpeedup, true},
			} {
				if m.prev <= 0 || m.cur <= 0 || (m.coresBound && !comparable) {
					continue
				}
				if m.cur < m.prev*(1-regressionTol) {
					out = append(out, fmt.Sprintf(
						"PR %d: %s %.2f× is %.0f%% below PR %d's %.2f× (gate: %.0f%%)",
						cur.PR, m.name, m.cur, 100*(1-m.cur/m.prev), prev.PR, m.prev, 100*regressionTol))
				}
			}
		}
	}
	return out
}

// runCheckRegression is the -check-regression entry point: print the
// verdict and fail (for CI) when any gate is violated.
func runCheckRegression(path string, out io.Writer) error {
	rows, err := loadHistory(path)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		fmt.Fprintf(out, "check-regression: %s has no rows, nothing to gate\n", path)
		return nil
	}
	violations := checkRegression(rows)
	if len(violations) == 0 {
		fmt.Fprintf(out, "check-regression: PR %d within %.0f%% of PR history (%d rows)\n",
			rows[len(rows)-1].PR, 100*regressionTol, len(rows))
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(out, "check-regression:", v)
	}
	return fmt.Errorf("%d tracked metric(s) regressed", len(violations))
}

// historySeries converts the ledger rows to per-metric trajectories,
// dropping unmeasured (zero) cells so early PRs don't render as dips to
// zero.
func historySeries(rows []benchRow) []report.TrajectorySeries {
	metrics := []struct {
		name, unit string
		get        func(benchRow) float64
	}{
		{"quick sweep wall time", "ms", func(r benchRow) float64 { return r.SweepMs }},
		{"sampled replay speedup", "x", func(r benchRow) float64 { return r.SampledSpeedup }},
		{"windowed replay speedup", "x", func(r benchRow) float64 { return r.WindowedSpeedup }},
		{"trace load", "ms", func(r benchRow) float64 { return r.TraceLoadMs }},
		{"predict p99 latency", "ms", func(r benchRow) float64 { return r.PredictP99Ms }},
		{"adaptive sweep cost ratio", "", func(r benchRow) float64 { return r.AdaptiveCostRatio }},
		{"cluster sweep speedup", "x", func(r benchRow) float64 { return r.ClusterSpeedup }},
		{"per-phase max error", "%", func(r benchRow) float64 { return r.PhaseMaxErr }},
	}
	var out []report.TrajectorySeries
	for _, m := range metrics {
		s := report.TrajectorySeries{Name: m.name, Unit: m.unit}
		for _, r := range rows {
			if v := m.get(r); v > 0 {
				s.Points = append(s.Points, report.TrajectoryPoint{PR: r.PR, Value: v})
			}
		}
		if len(s.Points) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// runHistorySVG is the -history-svg entry point: render the ledger as a
// stacked-panel trajectory chart, one panel per tracked metric.
func runHistorySVG(historyPath, svgPath string, out io.Writer) error {
	rows, err := loadHistory(historyPath)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("history-svg: %s has no rows to render", historyPath)
	}
	svg := report.SVGTrajectory("mosaic performance trajectory", historySeries(rows), 760)
	if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "history-svg: rendered %d ledger rows into %s\n", len(rows), svgPath)
	return nil
}

// runAppendRow is the -append-row entry point: rowJSON is one benchRow
// object, typically assembled by the CI bench job from the benchmark and
// sample-report outputs.
func runAppendRow(path, rowJSON string, out io.Writer) error {
	var row benchRow
	dec := json.NewDecoder(strings.NewReader(rowJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&row); err != nil {
		return fmt.Errorf("append-row: %w", err)
	}
	if row.PR <= 0 {
		return fmt.Errorf("append-row: row needs a positive \"pr\"")
	}
	if err := appendHistory(path, row); err != nil {
		return err
	}
	fmt.Fprintf(out, "append-row: recorded PR %d in %s\n", row.PR, path)
	return nil
}
