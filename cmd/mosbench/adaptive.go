package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/models"
	"mosaic/internal/plan"
	"mosaic/internal/stats"
	"mosaic/internal/workloads"
)

// The -adaptive / -adaptive-report modes: plan sweeps with the
// active-learning planner (internal/plan) instead of measuring the full
// protocol at uniform fidelity, and quote the bake-off CI gates —
// adaptive-N must buy the full protocol's Mosmodel accuracy back within
// adaptiveErrSlack absolute at no more than adaptiveCostBound of its
// measured accesses.

// adaptiveErrSlack is the allowed absolute excess of the adaptive
// model's max relative error over the full-protocol model's — the same
// constant the committed TestAdaptiveContract asserts.
const adaptiveErrSlack = 0.005

// adaptiveRow is one pair's bake-off entry: the row schema of
// BENCH_adaptive.json.
type adaptiveRow struct {
	Workload        string  `json:"workload"`
	Platform        string  `json:"platform"`
	Layouts         int     `json:"layouts"`
	Promotions      int     `json:"promotions"`
	FullMaxErr      float64 `json:"full_max_err"`
	AdaptiveMaxErr  float64 `json:"adaptive_max_err"`
	PredictedMaxErr float64 `json:"predicted_max_err"`
	// DeltaAbs is AdaptiveMaxErr − FullMaxErr, the quantity gated
	// against adaptiveErrSlack (negative = adaptive beat the full
	// protocol).
	DeltaAbs         float64 `json:"delta_abs"`
	CostAccesses     uint64  `json:"cost_accesses"`
	FullCostAccesses uint64  `json:"full_cost_accesses"`
	CostRatio        float64 `json:"cost_ratio"`
	Stopped          string  `json:"stopped"`
	Pass             bool    `json:"pass"`
}

// mosmodelMaxErr fits Mosmodel on train's samples and scores it against
// truth's — the bake-off's common ground truth.
func mosmodelMaxErr(train, truth *experiment.Dataset) (float64, error) {
	m := models.NewMosmodel()
	if err := m.Fit(train.Samples); err != nil {
		return 0, fmt.Errorf("fit mosmodel on %s: %w", train.Key(), err)
	}
	y, yhat := models.Predictions(m, truth.Samples)
	return stats.MaxAbsRelErr(y, yhat), nil
}

// sharedTraceDir returns the runner's trace cache, creating a temporary
// one (with its cleanup) when the flag left it empty — every bake-off
// sweep must replay identical traces.
func (b *bench) sharedTraceDir() (string, func(), error) {
	if dir := b.runner.TraceDir; dir != "" {
		return dir, func() {}, nil
	}
	tmp, err := os.MkdirTemp("", "mosbench-traces-")
	if err != nil {
		return "", nil, err
	}
	return tmp, func() { os.RemoveAll(tmp) }, nil
}

// planOne runs the adaptive planner for one pair on a fresh pipeline.
func (b *bench) planOne(w workloads.Workload, plat arch.Platform, cfg plan.Config, onStep func(plan.Step)) (*experiment.Dataset, *plan.Report, error) {
	r := experiment.NewRunner()
	r.Proto = b.runner.Proto
	r.Parallelism = b.runner.Parallelism
	r.TraceDir = b.runner.TraceDir
	return plan.Adaptive(context.Background(), r, w, plat, cfg, onStep, nil)
}

// adaptiveRun is the -adaptive mode: plan every selected pair's sweep
// and report how the budget was spent — the error-vs-cost curve, the
// stop reason, and the cost split. With jsonOut, one row per pair
// including the curve.
func (b *bench) adaptiveRun(cfg plan.Config, jsonOut bool) error {
	dir, cleanup, err := b.sharedTraceDir()
	if err != nil {
		return err
	}
	defer cleanup()
	b.runner.TraceDir = dir

	type row struct {
		Workload        string      `json:"workload"`
		Platform        string      `json:"platform"`
		Layouts         int         `json:"layouts"`
		Promotions      int         `json:"promotions"`
		PredictedMaxErr float64     `json:"predicted_max_err"`
		CostRatio       float64     `json:"cost_ratio"`
		Stopped         string      `json:"stopped"`
		Curve           []plan.Step `json:"curve"`
	}
	var rows []row
	for _, w := range b.workloads {
		for _, p := range b.platforms {
			fmt.Fprintf(b.diag, "adaptive: planning %s on %s\n", w.Name(), p.Name)
			_, rep, err := b.planOne(w, p, cfg, nil)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", w.Name(), p.Name, err)
			}
			rows = append(rows, row{
				Workload: w.Name(), Platform: p.Name,
				Layouts: len(rep.Points), Promotions: rep.Promotions,
				PredictedMaxErr: rep.PredictedMaxErr,
				CostRatio:       rep.CostRatio(),
				Stopped:         rep.Stopped,
				Curve:           rep.Steps,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(b.out)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	for _, r := range rows {
		fmt.Fprintf(b.out, "Adaptive plan: %s on %s\n", r.Workload, r.Platform)
		fmt.Fprintf(b.out, "  %d of %d layouts measured exactly (stop: %s), predicted max err %s, %.1f%% of full-protocol accesses\n",
			r.Promotions, r.Layouts, r.Stopped, pctOrDash(r.PredictedMaxErr), 100*r.CostRatio)
		fmt.Fprintln(b.out, "  round  promoted          pred.err   cost")
		for _, st := range r.Curve {
			name := st.Promoted
			if name == "" {
				name = "(stop)"
			}
			fmt.Fprintf(b.out, "  %5d  %-16s  %8s  %5.1f%%\n",
				st.Round, name, pctOrDash(st.PredictedMaxErr), 100*st.CostRatio)
		}
		fmt.Fprintln(b.out)
	}
	return nil
}

// pctOrDash renders a predicted error, or a dash for the planner's
// "not yet computable" −1 sentinel.
func pctOrDash(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f%%", 100*v)
}

// adaptiveReport is the -adaptive-report mode: the full-protocol vs
// adaptive bake-off behind the CI gate. Each selected pair is measured
// twice — the complete protocol at exact fidelity, then the planned
// sweep — and both models are scored against the exact samples. With
// jsonOut the rows become BENCH_adaptive.json. A contract violation
// (excess error or cost on any pair) is a nonzero exit.
func (b *bench) adaptiveReport(cfg plan.Config, jsonOut bool) error {
	dir, cleanup, err := b.sharedTraceDir()
	if err != nil {
		return err
	}
	defer cleanup()
	b.runner.TraceDir = dir

	var rows []adaptiveRow
	failed := 0
	for _, w := range b.workloads {
		for _, p := range b.platforms {
			fmt.Fprintf(b.diag, "adaptive-report: full exact protocol, %s on %s\n", w.Name(), p.Name)
			full := experiment.NewRunner()
			full.Proto = b.runner.Proto
			full.Parallelism = b.runner.Parallelism
			full.TraceDir = dir
			truth, err := full.Collect(w, p)
			if err != nil {
				return fmt.Errorf("%s on %s: full protocol: %w", w.Name(), p.Name, err)
			}
			fullErr, err := mosmodelMaxErr(truth, truth)
			if err != nil {
				return err
			}

			fmt.Fprintf(b.diag, "adaptive-report: planned sweep, %s on %s\n", w.Name(), p.Name)
			ds, rep, err := b.planOne(w, p, cfg, nil)
			if err != nil {
				return fmt.Errorf("%s on %s: planned sweep: %w", w.Name(), p.Name, err)
			}
			adErr, err := mosmodelMaxErr(ds, truth)
			if err != nil {
				return err
			}

			row := adaptiveRow{
				Workload: w.Name(), Platform: p.Name,
				Layouts: len(rep.Points), Promotions: rep.Promotions,
				FullMaxErr: fullErr, AdaptiveMaxErr: adErr,
				PredictedMaxErr: rep.PredictedMaxErr,
				DeltaAbs:        adErr - fullErr,
				CostAccesses:    rep.CostAccesses, FullCostAccesses: rep.FullCostAccesses,
				CostRatio: rep.CostRatio(),
				Stopped:   rep.Stopped,
			}
			row.Pass = !math.IsNaN(adErr) &&
				row.DeltaAbs <= adaptiveErrSlack &&
				row.CostRatio <= adaptiveCostBound
			if !row.Pass {
				failed++
			}
			rows = append(rows, row)
		}
	}

	if jsonOut {
		enc := json.NewEncoder(b.out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(b.out, "Adaptive bake-off: full exact protocol vs planned sweep (slack %.1f%% abs, cost cap %.3f)\n",
			100*adaptiveErrSlack, adaptiveCostBound)
		for _, r := range rows {
			verdict := "PASS"
			if !r.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(b.out, "  %-28s full %.3f%%  adaptive %.3f%% (Δ %+.3f%%)  cost %.3f  %d/%d exact  %s\n",
				r.Workload+"@"+r.Platform, 100*r.FullMaxErr, 100*r.AdaptiveMaxErr,
				100*r.DeltaAbs, r.CostRatio, r.Promotions, r.Layouts, verdict)
		}
	}
	if failed > 0 {
		return fmt.Errorf("adaptive-report: %d of %d pair(s) violate the accuracy/cost contract", failed, len(rows))
	}
	return nil
}
