package mosaic_test

import (
	"math/rand"
	"testing"

	"mosaic"
	"mosaic/internal/trace"
)

// A custom workload through the public API: the downstream-user story.
func TestFuncWorkloadPipeline(t *testing.T) {
	w := &mosaic.FuncWorkload{
		WorkloadName: "custom/scatter",
		HeapBytes:    16 << 20,
		GenerateFunc: func(alloc *mosaic.Allocator) (*mosaic.Trace, error) {
			base, err := alloc.Malloc(16 << 20)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(1))
			b := trace.NewBuilder("custom/scatter", 30000)
			for i := 0; i < 30000; i++ {
				b.Compute(10)
				b.Load(base + mosaic.Addr(rng.Uint64()%(16<<20)))
			}
			return b.Trace(), nil
		},
	}
	runner := mosaic.NewRunner()
	ds, err := runner.Collect(w, mosaic.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Samples) != 54 {
		t.Fatalf("samples = %d, want 54", len(ds.Samples))
	}
	m, err := mosaic.NewModel("mosmodel")
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _, err := mosaic.EvaluateModel(m, ds.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 0.03 {
		t.Errorf("mosmodel on a custom workload errs %.2f%%", 100*maxErr)
	}
}

func TestFuncWorkloadDefaults(t *testing.T) {
	w := &mosaic.FuncWorkload{WorkloadName: "x"}
	if w.Suite() != "x" {
		t.Errorf("default suite = %q", w.Suite())
	}
	heap, anon := w.PoolBytes()
	if heap == 0 || anon == 0 {
		t.Error("pool bytes must have a floor even with zero hints")
	}
	if heap%(2<<20) != 0 || anon%(2<<20) != 0 {
		t.Error("pool bytes must be 2MB-aligned")
	}
	w.SuiteName = "suite"
	if w.Suite() != "suite" {
		t.Error("explicit suite ignored")
	}
}

// The policies surface: THP and libhugetlbfs through the facade.
func TestFacadePolicies(t *testing.T) {
	// THP: a plain 4KB process gets promoted, then runs faster.
	runPolicy := func(thp bool) mosaic.Counters {
		proc, err := mosaic.NewProcess(1 << 37)
		if err != nil {
			t.Fatal(err)
		}
		w, err := mosaic.WorkloadByName("gups/8GB")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := w.Generate(mosaic.NewAllocator(proc))
		if err != nil {
			t.Fatal(err)
		}
		if thp {
			st, err := mosaic.RunTHPScan(proc, mosaic.DefaultTHPConfig())
			if err != nil {
				t.Fatal(err)
			}
			if st.Promoted == 0 {
				t.Fatal("THP scan promoted nothing")
			}
		}
		ctr, err := mosaic.RunTrace(mosaic.SandyBridge, proc, tr)
		if err != nil {
			t.Fatal(err)
		}
		return ctr
	}
	base := runPolicy(false)
	promoted := runPolicy(true)
	if promoted.R >= base.R {
		t.Errorf("THP run (%d) not faster than 4KB run (%d)", promoted.R, base.R)
	}
	if promoted.M >= base.M/2 {
		t.Errorf("THP misses %d not well below 4KB misses %d", promoted.M, base.M)
	}

	// libhugetlbfs: attaches and serves malloc from hugepages.
	proc, err := mosaic.NewProcess(1 << 37)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := mosaic.AttachLibhugetlbfs(proc, mosaic.Page2M, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	a, err := proc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !lib.HeapRegion().Contains(a) {
		t.Error("malloc escaped the libhugetlbfs heap")
	}
}

// Partial simulation through the runner: the Figure 1 pipeline.
func TestFacadePartialSimulate(t *testing.T) {
	runner := mosaic.NewRunner()
	w, err := mosaic.WorkloadByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	wd, err := runner.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	lay := wd.Target.Baseline4K()
	pm, err := runner.PartialSimulate(wd, mosaic.SandyBridge, lay, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := runner.RunLayout(wd, mosaic.SandyBridge, lay)
	if err != nil {
		t.Fatal(err)
	}
	if pm.H != full.H || pm.M != full.M || pm.C != full.C {
		t.Errorf("partial (H=%d M=%d C=%d) vs full (H=%d M=%d C=%d)",
			pm.H, pm.M, pm.C, full.H, full.M, full.C)
	}
}
