// Top-level acceptance tests for parallel windowed replay: the quick sweep
// over the bundled workloads, split into K windows, must be bit-identical
// to the unwindowed sweep in exact mode (proven per-package in internal/sim
// and internal/experiment) and inside the sampling-noise accuracy envelope
// in warmup-reconstructed mode — chunk-boundary state is rebuilt by a
// functional warmup run-in instead of restored from a checkpoint, so the
// results inherit sampling's contract rather than bit-identity.
package mosaic

import (
	"math"
	"path/filepath"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// runWindowedSweep is runSampledSweep with the windowed-replay knobs: the
// quick-protocol sweep over the stretched bundled workloads with the replay
// of every (workload, platform) split into K parallel windows.
func runWindowedSweep(tb testing.TB, dir string, plats []arch.Platform, s sim.Sampling, k int, warm bool, ckptDir string) []*experiment.Dataset {
	tb.Helper()
	var ws []workloads.Workload
	for _, name := range sampledSweepWorkloads {
		w, err := workloads.ByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		ws = append(ws, workloads.Stretched(w, sampledStretch))
	}
	r := experiment.NewRunner()
	r.Proto = experiment.Quick
	r.TraceDir = dir
	r.Sampling = s
	r.Windows = k
	r.WindowWarm = warm
	r.CheckpointDir = ckptDir
	dss, err := r.CollectAll(ws, plats, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return dss
}

// compareWindowedWarm checks a warmup-reconstructed windowed sweep against
// the exact unwindowed sweep under the sampling accuracy contract. Unlike
// compareSampledSweeps it takes the coverage fraction as a given: warm
// windowed replay of an exact plan measures every access (the warmup
// run-ins are excluded by window-delta accounting), so each counter's event
// count is simply its exact value.
func compareWindowedWarm(tb testing.TB, exact, warm []*experiment.Dataset) sampledSweepErrors {
	tb.Helper()
	if len(exact) != len(warm) {
		tb.Fatalf("%d exact datasets vs %d warm-windowed", len(exact), len(warm))
	}
	var out sampledSweepErrors
	for d := range exact {
		if exact[d].Platform != warm[d].Platform || exact[d].Workload != warm[d].Workload {
			tb.Fatalf("dataset order mismatch: %s@%s vs %s@%s",
				exact[d].Workload, exact[d].Platform, warm[d].Workload, warm[d].Platform)
		}
		for layoutName, ec := range exact[d].Counters {
			wc, ok := warm[d].Counters[layoutName]
			if !ok {
				tb.Fatalf("warm-windowed sweep missing layout %s", layoutName)
			}
			ev, wv := sampledCounterValues(ec), sampledCounterValues(wc)
			for i := range ev {
				if ev[i] < minSampledCount {
					continue
				}
				rel := math.Abs(float64(wv[i])-float64(ev[i])) / float64(ev[i])
				events := float64(ev[i])
				at := exact[d].Workload + "@" + exact[d].Platform + "/" + layoutName + "/" + sampledCounterNames[i]
				if events >= sigSampledEvents {
					out.Significant++
					if rel > out.WorstSig {
						out.WorstSig, out.WorstSigAt = rel, at
					}
				}
				if ratio := rel / sampledErrorBound(events); ratio > out.WorstEnvRatio {
					out.WorstEnvRatio, out.WorstEnvAt = ratio, at
				}
			}
		}
	}
	return out
}

// TestWindowedWarmReplayAccuracy is the acceptance bound for the
// approximate mode: on sweep-scale traces, warmup-reconstructed windowed
// replay (K=8, no checkpoints) keeps every statistically significant
// counter within 1% of the exact unwindowed sweep, and every counter inside
// the max(1%, 8/sqrt(events)) noise envelope.
func TestWindowedWarmReplayAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("windowed-vs-exact sweep comparison is not short")
	}
	dir := t.TempDir()
	plats := []arch.Platform{arch.SandyBridge}
	exact, _ := runSampledSweep(t, dir, plats, sim.Sampling{})
	warm := runWindowedSweep(t, dir, plats, sim.Sampling{}, 8, true, "")

	errs := compareWindowedWarm(t, exact, warm)
	t.Logf("%d significant entries, worst %.4f%% (%s); worst envelope ratio %.2f (%s)",
		errs.Significant, 100*errs.WorstSig, errs.WorstSigAt, errs.WorstEnvRatio, errs.WorstEnvAt)
	if errs.Significant < 100 {
		t.Errorf("only %d significant counter entries — the sweep is too small to claim anything", errs.Significant)
	}
	if errs.WorstSig > 0.01 {
		t.Errorf("significant counter off by %.4f%% at %s, want ≤ 1%%", 100*errs.WorstSig, errs.WorstSigAt)
	}
	if errs.WorstEnvRatio > 1 {
		t.Errorf("counter outside the noise envelope at %s (ratio %.2f)", errs.WorstEnvAt, errs.WorstEnvRatio)
	}
}

// TestWindowedSweepRace exercises concurrent windowed replay inside one
// sweep — K window workers × N layouts sharing pooled engines, address
// spaces, and a checkpoint store — at sizes small enough that CI can run it
// under -race -count=2. The exact-mode pass also re-checks bit-identity
// against the unwindowed sweep while the race detector watches.
func TestWindowedSweepRace(t *testing.T) {
	dir := t.TempDir()
	ckptDir := t.TempDir()
	plats := []arch.Platform{arch.SandyBridge}
	w, err := workloads.ByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	ws := []workloads.Workload{w}

	collect := func(k int, warm bool, ckpt string) []*experiment.Dataset {
		r := experiment.NewRunner()
		r.Proto = experiment.Quick
		r.TraceDir = dir
		r.Parallelism = 2
		r.Windows = k
		r.WindowWarm = warm
		r.CheckpointDir = ckpt
		dss, err := r.CollectAll(ws, plats, nil)
		if err != nil {
			t.Fatal(err)
		}
		return dss
	}

	ref := collect(0, false, "")
	exact := collect(4, false, ckptDir) // cold: saves checkpoints while racing
	warm := collect(4, false, ckptDir)  // warm: restores them concurrently
	approx := collect(4, true, "")      // warmup-reconstructed workers

	if files, err := filepath.Glob(filepath.Join(ckptDir, "*.mosckpt")); err != nil || len(files) == 0 {
		t.Fatalf("cold windowed sweep saved no checkpoints (err=%v)", err)
	}
	for name, got := range map[string][]*experiment.Dataset{"cold": exact, "warm": warm} {
		if len(got) != len(ref) {
			t.Fatalf("%s: %d datasets, want %d", name, len(got), len(ref))
		}
		for d := range ref {
			for layoutName, rc := range ref[d].Counters {
				if gc := got[d].Counters[layoutName]; gc != rc {
					t.Errorf("%s: %s@%s/%s diverges from unwindowed sweep:\n got %+v\nwant %+v",
						name, ref[d].Workload, ref[d].Platform, layoutName, gc, rc)
				}
			}
		}
	}
	// The approximate pass only needs to have produced counters — its
	// accuracy contract is TestWindowedWarmReplayAccuracy's job.
	for d := range approx {
		if len(approx[d].Counters) == 0 {
			t.Errorf("warm-mode sweep %s@%s produced no counters", approx[d].Workload, approx[d].Platform)
		}
	}
}
