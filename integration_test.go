package mosaic

import (
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/workloads"
)

// TestPaperLandscape is the repository's golden regression test: it runs
// the full 54-layout protocol for a representative workload subset on all
// three platforms and asserts the paper's qualitative findings. If a
// change to the substrate breaks one of these, the reproduction no longer
// stands. (~30s; the complete sweep lives in cmd/mosbench and the benches.)
func TestPaperLandscape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-protocol integration test")
	}
	r := experiment.NewRunner()
	subset := []string{"gups/16GB", "spec06/mcf", "spec17/xalancbmk_s", "gapbs/pr-twitter", "gapbs/bfs-road"}

	type key struct{ workload, platform string }
	errsOf := make(map[key]map[string]float64)
	sensitive := make(map[key]bool)
	for _, p := range arch.Experimental {
		for _, name := range subset {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := r.Collect(w, p)
			if err != nil {
				t.Fatal(err)
			}
			k := key{name, p.Name}
			sensitive[k] = ds.TLBSensitive
			if !ds.TLBSensitive {
				continue
			}
			list, err := experiment.EvaluateModels(ds)
			if err != nil {
				t.Fatal(err)
			}
			m := make(map[string]float64, len(list))
			for _, e := range list {
				m[e.Model] = e.MaxErr
			}
			errsOf[k] = m
		}
	}

	// §VI-A/D: gapbs/bfs-road is TLB-sensitive on the small-TLB machines
	// and insensitive on Broadwell.
	if !sensitive[key{"gapbs/bfs-road", "SandyBridge"}] {
		t.Error("bfs-road should be TLB-sensitive on SandyBridge")
	}
	if !sensitive[key{"gapbs/bfs-road", "Haswell"}] {
		t.Error("bfs-road should be TLB-sensitive on Haswell")
	}
	if sensitive[key{"gapbs/bfs-road", "Broadwell"}] {
		t.Error("bfs-road should be TLB-insensitive on Broadwell")
	}

	worst := map[string]float64{}
	for _, m := range errsOf {
		for name, e := range m {
			if e > worst[name] {
				worst[name] = e
			}
		}
	}

	// Figure 2's shape: the preexisting 4KB-anchored models fail by
	// roughly 2 orders of magnitude more than Mosmodel...
	if worst["basu"] < 0.5 || worst["pham"] < 0.5 {
		t.Errorf("basu/pham worst errors %.2f/%.2f suspiciously low (paper: ≈1.9/1.8)",
			worst["basu"], worst["pham"])
	}
	// ...the 2MB-anchored linear models fail too...
	if worst["gandhi"] < 0.3 || worst["alam"] < 0.3 {
		t.Errorf("gandhi/alam worst errors %.2f/%.2f suspiciously low", worst["gandhi"], worst["alam"])
	}
	// ...Yaniv is the best prior model but still visibly off somewhere...
	if worst["yaniv"] < 0.01 {
		t.Errorf("yaniv worst error %.4f implausibly low", worst["yaniv"])
	}
	if worst["yaniv"] > worst["basu"] {
		t.Error("yaniv should beat basu")
	}
	// ...and Mosmodel honours its 3% bound and beats every other model's
	// worst case.
	if worst["mosmodel"] > 0.03 {
		t.Errorf("mosmodel worst error %.4f exceeds the 3%% bound", worst["mosmodel"])
	}
	for _, other := range []string{"pham", "alam", "gandhi", "basu", "yaniv", "poly1"} {
		if worst["mosmodel"] > worst[other] {
			t.Errorf("mosmodel (%.4f) should beat %s (%.4f)", worst["mosmodel"], other, worst[other])
		}
	}

	// §VI-D: on Broadwell, gups's walk cycles exceed its runtime.
	bdwGups := key{"gups/16GB", "Broadwell"}
	w, _ := workloads.ByName("gups/16GB")
	ds, err := r.Collect(w, arch.Broadwell)
	if err != nil {
		t.Fatal(err)
	}
	s4k, ok := ds.Baseline("4KB")
	if !ok {
		t.Fatal("missing 4KB baseline")
	}
	if s4k.C <= s4k.R {
		t.Errorf("Broadwell gups: C=%v should exceed R=%v (two walkers)", s4k.C, s4k.R)
	}
	_ = bdwGups

	// Figure 9: xalancbmk's fitted slope exceeds 1 on Broadwell.
	wx, _ := workloads.ByName("spec17/xalancbmk_s")
	dsx, err := r.Collect(wx, arch.Broadwell)
	if err != nil {
		t.Fatal(err)
	}
	slope, err := experiment.FittedSlope(dsx)
	if err != nil {
		t.Fatal(err)
	}
	if slope <= 1 {
		t.Errorf("xalancbmk Broadwell slope = %.2f, want > 1", slope)
	}
}

// TestAllWorkloadsGenerate generates every one of the 19 workloads once
// and checks the trace invariants the pipeline depends on.
func TestAllWorkloadsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all 19 workloads")
	}
	r := experiment.NewRunner()
	for _, w := range workloads.All() {
		wd, err := r.Prepare(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		tr := wd.Trace
		if tr.Len() < 50_000 {
			t.Errorf("%s: trace too short (%d)", w.Name(), tr.Len())
		}
		if tr.Instructions() <= uint64(tr.Len()) {
			t.Errorf("%s: implausible instruction count", w.Name())
		}
		// bfs-road's working set is deliberately tiny (its whole point);
		// everything else touches at least a MB.
		if tr.Footprint() < 512<<10 {
			t.Errorf("%s: footprint %d suspiciously small", w.Name(), tr.Footprint())
		}
		if err := wd.Target.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name(), err)
		}
	}
}
