// Package mosaic reproduces "Predicting Execution Times With Partial
// Simulations in Virtual Memory Research: Why and How" (MICRO 2020) as a
// library: the Mosalloc mosaic memory allocator, a modelled x86-64
// virtual-memory subsystem (TLBs, page-walk caches, hardware walkers,
// cache hierarchy, timing), the paper's benchmark workloads, its layout-
// selection heuristics, and all nine runtime models — Basu, Pham, Gandhi,
// Alam, Yaniv, poly1/2/3 and Mosmodel.
//
// The typical flow mirrors the paper's pipeline (Figure 1 and §VI):
//
//	runner := mosaic.NewRunner()
//	w, _ := mosaic.WorkloadByName("gups/8GB")
//	ds, _ := runner.Collect(w, mosaic.SandyBridge) // 54 layouts + baselines
//	m, _ := mosaic.NewModel("mosmodel")
//	maxErr, geoErr, _ := mosaic.EvaluateModel(m, ds.Samples)
//
// All heavy machinery lives in internal packages; this package re-exports
// the stable surface.
package mosaic

import (
	"mosaic/internal/arch"
	"mosaic/internal/cpu"
	"mosaic/internal/experiment"
	"mosaic/internal/layout"
	"mosaic/internal/libc"
	"mosaic/internal/libhugetlbfs"
	"mosaic/internal/mem"
	"mosaic/internal/models"
	"mosaic/internal/mosalloc"
	"mosaic/internal/partialsim"
	"mosaic/internal/pmu"
	"mosaic/internal/stats"
	"mosaic/internal/thp"
	"mosaic/internal/trace"
	"mosaic/internal/workloads"
)

// Core value types, re-exported.
type (
	// Addr is a virtual or physical address in the modelled machine.
	Addr = mem.Addr
	// PageSize is one of the three x86-64 page sizes.
	PageSize = mem.PageSize
	// Platform describes one modelled processor (Tables 3–4).
	Platform = arch.Platform
	// Counters are the PMU readings of one run (Table 2).
	Counters = pmu.Counters
	// Sample is one (H, M, C) → R measurement point.
	Sample = pmu.Sample
	// Trace is a recorded memory-access stream.
	Trace = trace.Trace
	// Workload is one benchmark configuration (Table 5).
	Workload = workloads.Workload
	// Allocator is the allocation interface workloads draw memory from.
	Allocator = workloads.Allocator
	// Layout is one named Mosalloc pool configuration.
	Layout = layout.Layout
	// LayoutTarget describes a workload's pool usage, from which the
	// layout heuristics generate mosaics.
	LayoutTarget = layout.Target
	// MissProfile is the simulated-PEBS TLB-miss histogram driving the
	// sliding-window heuristic.
	MissProfile = layout.MissProfile
	// Model is a runtime model R̂(H, M, C).
	Model = models.Model
	// PartialMetrics is the partial simulator's output: the virtual-memory
	// metrics (H, M, C) without a runtime — what a runtime model turns
	// into a prediction (Figure 1).
	PartialMetrics = partialsim.Metrics
	// Breakdown decomposes a modelled runtime into base work, translation
	// stalls, walker queueing, and data stalls — a diagnostic no real PMU
	// offers.
	Breakdown = cpu.Breakdown
	// Dataset holds one (workload, platform) pair's measurements.
	Dataset = experiment.Dataset
	// Runner orchestrates trace generation, layout replay, and caching.
	Runner = experiment.Runner
	// Process is a modelled process with the glibc-like allocation stack.
	Process = libc.Process
	// Mosalloc is the mosaic memory allocator attached to a process.
	Mosalloc = mosalloc.Mosalloc
	// MosallocConfig configures Mosalloc's three pools.
	MosallocConfig = mosalloc.Config
	// PoolConfig is one pool's page-size mosaic.
	PoolConfig = mosalloc.PoolConfig
	// LibHugeTLBFS is the modelled libhugetlbfs library (§V-A): uniform
	// hugepages via the morecore hook only — the pre-Mosalloc approach,
	// limitations and bug included.
	LibHugeTLBFS = libhugetlbfs.Lib
	// THPConfig tunes the modelled transparent-hugepage daemon.
	THPConfig = thp.Config
	// THPStats reports one khugepaged-style promotion pass.
	THPStats = thp.Stats
)

// The three architectural page sizes.
const (
	Page4K = mem.Page4K
	Page2M = mem.Page2M
	Page1G = mem.Page1G
)

// The modelled platforms of the paper's Table 3 (experimental machines)
// and Table 4 (TLB survey).
var (
	SandyBridge = arch.SandyBridge
	IvyBridge   = arch.IvyBridge
	Haswell     = arch.Haswell
	Broadwell   = arch.Broadwell
	Skylake     = arch.Skylake
)

// Platforms returns the paper's three experimental machines.
func Platforms() []Platform { return arch.Experimental }

// PlatformByName looks a platform up by name.
func PlatformByName(name string) (Platform, error) { return arch.ByName(name) }

// Workloads returns the 19 benchmark configurations of Table 8.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName looks a workload up by its paper label (e.g. "gups/8GB").
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// ModelNames lists all nine runtime models in the paper's figure order.
func ModelNames() []string {
	var out []string
	for _, f := range models.Registry() {
		out = append(out, f().Name())
	}
	return out
}

// NewModel creates a fresh, unfitted runtime model by name.
func NewModel(name string) (Model, error) { return models.ByName(name) }

// EvaluateModel fits the model on the samples and returns its maximal and
// geometric-mean relative errors (the paper's Equations 1–2).
func EvaluateModel(m Model, samples []Sample) (maxErr, geoErr float64, err error) {
	return models.Evaluate(m, samples)
}

// CrossValidateModel runs K-fold cross-validation (§VI-C) for the named
// model and returns the worst held-out-fold maximal error.
func CrossValidateModel(name string, samples []Sample, k int, seed int64) (float64, error) {
	factory := func() Model {
		m, err := models.ByName(name)
		if err != nil {
			panic(err) // name validated below before first use
		}
		return m
	}
	if _, err := models.ByName(name); err != nil {
		return 0, err
	}
	return models.CrossValidate(factory, samples, k, seed)
}

// MaxAbsRelErr is Equation 1: the worst |R−R̂|/R over the samples.
func MaxAbsRelErr(y, yhat []float64) float64 { return stats.MaxAbsRelErr(y, yhat) }

// GeoMeanAbsRelErr is Equation 2: the geometric mean of |R−R̂|/R.
func GeoMeanAbsRelErr(y, yhat []float64) float64 { return stats.GeoMeanAbsRelErr(y, yhat) }

// NewRunner builds the experiment pipeline (54-layout standard protocol,
// parallel replays, per-(workload, platform) caching).
func NewRunner() *Runner { return experiment.NewRunner() }

// NewProcess creates a modelled process with the given bytes of simulated
// physical memory.
func NewProcess(physMem uint64) (*Process, error) { return libc.NewProcess(physMem) }

// NewAllocator wraps a process for workload trace generation.
func NewAllocator(p *Process) *Allocator { return workloads.NewAllocator(p) }

// FuncWorkload adapts a function into a Workload, so library users can run
// the full 54-layout pipeline — and fit Mosmodel — on their own
// applications' access patterns.
type FuncWorkload struct {
	// WorkloadName labels the workload ("myapp/queries").
	WorkloadName string
	// SuiteName groups related workloads; defaults to WorkloadName.
	SuiteName string
	// HeapBytes and AnonBytes size the Mosalloc pools the workload needs.
	HeapBytes uint64
	AnonBytes uint64
	// GenerateFunc allocates through alloc and records the access trace.
	GenerateFunc func(alloc *Allocator) (*Trace, error)
}

// Name implements Workload.
func (f *FuncWorkload) Name() string { return f.WorkloadName }

// Suite implements Workload.
func (f *FuncWorkload) Suite() string {
	if f.SuiteName != "" {
		return f.SuiteName
	}
	return f.WorkloadName
}

// PoolBytes implements Workload.
func (f *FuncWorkload) PoolBytes() (heap, anon uint64) {
	round := func(n uint64) uint64 {
		n += n / 8
		return uint64(mem.AlignUp(mem.Addr(max(n, 1<<20)), Page2M))
	}
	return round(f.HeapBytes), round(f.AnonBytes)
}

// Generate implements Workload.
func (f *FuncWorkload) Generate(alloc *Allocator) (*Trace, error) {
	return f.GenerateFunc(alloc)
}

// AttachMosalloc reserves the configured pools and interposes Mosalloc on
// the process's allocation paths, as LD_PRELOAD does on a real process.
func AttachMosalloc(p *Process, cfg MosallocConfig) (*Mosalloc, error) {
	return mosalloc.Attach(p, cfg)
}

// ParseLayout parses a pool mosaic like "4KB:8MB,2MB:16MB,4KB:8MB".
func ParseLayout(s string) (PoolConfig, error) { return mosalloc.ParseLayout(s) }

// UniformPool builds a single-page-size pool covering at least `bytes`.
func UniformPool(size PageSize, bytes uint64) PoolConfig {
	return mosalloc.Uniform(size, bytes)
}

// WindowPool builds a pool whose [start, end) window is backed with
// `inner` pages and the rest with 4KB pages.
func WindowPool(bytes, start, end uint64, inner PageSize) PoolConfig {
	return mosalloc.Window(bytes, start, end, inner)
}

// ProfileMisses replays a trace through the platform's (scaled) TLB under
// an all-4KB layout and histograms the misses over the target's space —
// the simulated-PEBS step of the sliding-window heuristic (§VI-B).
func ProfileMisses(tr *Trace, p Platform, t LayoutTarget) MissProfile {
	return layout.ProfileMisses(tr, p.Scaled().TLB, t)
}

// Run measures one workload on one platform under one layout, returning
// the performance counters — a single experimental sample.
func Run(w Workload, p Platform, lay Layout) (Counters, error) {
	r := experiment.NewRunner()
	wd, err := r.Prepare(w)
	if err != nil {
		return Counters{}, err
	}
	return r.RunLayout(wd, p, lay)
}

// RunTrace replays a trace against a process's address space on the
// (scaled) platform and returns the counters. Use it to measure address
// spaces prepared by other policies — THP promotion, libhugetlbfs, or a
// plain 4KB kernel — rather than Mosalloc layouts.
func RunTrace(p Platform, proc *Process, tr *Trace) (Counters, error) {
	machine, err := cpu.New(p.Scaled(), proc.Space())
	if err != nil {
		return Counters{}, err
	}
	return machine.Run(tr)
}

// RunTraceDetailed is RunTrace plus the runtime breakdown.
func RunTraceDetailed(p Platform, proc *Process, tr *Trace) (Counters, Breakdown, error) {
	machine, err := cpu.New(p.Scaled(), proc.Space())
	if err != nil {
		return Counters{}, Breakdown{}, err
	}
	return machine.RunDetailed(tr)
}

// AttachLibhugetlbfs interposes the modelled libhugetlbfs on the process:
// morecore allocations land on a uniform hugepage heap of the given page
// size and capacity; mmap and brk remain untouched (its documented
// limitation), and the contention-arena bug of §V-C is preserved.
func AttachLibhugetlbfs(p *Process, pageSize PageSize, capacity uint64) (*LibHugeTLBFS, error) {
	return libhugetlbfs.Attach(p, pageSize, capacity)
}

// RunTHPScan performs one transparent-hugepage promotion pass over the
// process's address space (khugepaged's job).
func RunTHPScan(p *Process, cfg THPConfig) (THPStats, error) {
	return thp.New(cfg).Scan(p.Space())
}

// DefaultTHPConfig is THP "always" on an unfragmented machine.
func DefaultTHPConfig() THPConfig { return thp.DefaultConfig() }
