// Top-level acceptance tests for adaptive sweep planning: on the bundled
// workloads, the active-learning planner must buy back the full
// 54-layout protocol's Mosmodel accuracy for a fraction of its
// measured-access cost. This is the accuracy contract CI gates via
// BENCH_adaptive.json: the model trained on the planned (mixed-fidelity)
// dataset, evaluated against the exact full-protocol samples, stays
// within adaptiveErrSlack absolute of the full-protocol model's max
// error while spending at most adaptiveCostCap of its accesses.
package mosaic

import (
	"context"
	"math"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/models"
	"mosaic/internal/plan"
	"mosaic/internal/stats"
	"mosaic/internal/workloads"
)

// adaptiveWorkloads are the bundled pairs the contract is quoted on —
// the same locality extremes as the sampled-replay acceptance sweep.
var adaptiveWorkloads = []string{"gups/8GB", "spec06/mcf"}

// adaptiveErrSlack is the allowed absolute excess of the adaptive
// model's max relative error over the full-protocol model's.
const adaptiveErrSlack = 0.005

// adaptiveCostCap bounds the planned sweep's measured accesses relative
// to the full exact protocol.
const adaptiveCostCap = 1.0 / 3.0

// adaptiveModelErr evaluates a model trained on ds against the exact
// full-protocol samples — the common ground truth both protocols are
// judged on.
func adaptiveModelErr(t *testing.T, ds *experiment.Dataset, truth *experiment.Dataset) float64 {
	t.Helper()
	m := models.NewMosmodel()
	if err := m.Fit(ds.Samples); err != nil {
		t.Fatalf("fit mosmodel on %s: %v", ds.Key(), err)
	}
	y, yhat := models.Predictions(m, truth.Samples)
	return stats.MaxAbsRelErr(y, yhat)
}

// TestAdaptiveContract runs the bake-off both mosbench -adaptive-report
// and the CI gate reproduce: full exact protocol vs planned sweep, per
// bundled workload.
func TestAdaptiveContract(t *testing.T) {
	if testing.Short() {
		t.Skip("full-protocol bake-off in -short mode")
	}
	plat, err := arch.ByName("SandyBridge")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range adaptiveWorkloads {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}

			// Ground truth: the exact standard protocol.
			full := experiment.NewRunner()
			full.TraceDir = t.TempDir()
			truth, err := full.Collect(w, plat)
			if err != nil {
				t.Fatal(err)
			}
			fullErr := adaptiveModelErr(t, truth, truth)

			// Planned sweep over the same protocol (fresh runner so no
			// dataset aliasing; shared trace dir skips regeneration).
			ad := experiment.NewRunner()
			ad.TraceDir = full.TraceDir
			ds, rep, err := plan.Adaptive(context.Background(), ad, w, plat, plan.Config{}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			adErr := adaptiveModelErr(t, ds, truth)

			ratio := rep.CostRatio()
			t.Logf("%s: full maxerr %.3f%%, adaptive maxerr %.3f%% (pred %.3f%%), promotions %d/%d layouts, cost ratio %.3f, stop %s",
				name, 100*fullErr, 100*adErr, 100*rep.PredictedMaxErr,
				rep.Promotions, len(rep.Points), ratio, rep.Stopped)

			if math.IsNaN(adErr) || adErr > fullErr+adaptiveErrSlack {
				t.Errorf("adaptive max error %.4f exceeds full-protocol %.4f + %.4f slack",
					adErr, fullErr, adaptiveErrSlack)
			}
			if ratio > adaptiveCostCap {
				t.Errorf("adaptive cost ratio %.3f exceeds cap %.3f", ratio, adaptiveCostCap)
			}
			if rep.Promotions >= len(rep.Points) {
				t.Errorf("planner promoted every layout (%d) — no saving over the full protocol", rep.Promotions)
			}
		})
	}
}
