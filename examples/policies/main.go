// Hugepage-policy comparison: the paper's §V-A related-work survey as a
// runnable experiment. The same two workloads run under five policies:
//
//	4KB           – no hugepages (the baseline)
//	THP           – transparent hugepages, "always", unfragmented
//	THP-frag      – THP on a machine with fragmented physical memory
//	libhugetlbfs  – morecore-only interposition, 2MB pages
//	mosalloc-2MB  – Mosalloc with all-2MB pools
//
// Two workloads expose the difference the paper describes:
//
//   - xsbench allocates with malloc, so libhugetlbfs covers it (minus the
//     arena bug under contention);
//   - graph500 allocates with direct mmap, which libhugetlbfs cannot
//     intercept at all — the exact workload the paper names (§V).
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	for _, wl := range []string{"xsbench/4GB", "graph500/2GB"} {
		compare(wl)
		fmt.Println()
	}
}

func compare(name string) {
	w, err := mosaic.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	plat := mosaic.Haswell
	fmt.Printf("%s on %s\n", w.Name(), plat.Name)
	fmt.Printf("%-14s %14s %12s %14s %10s\n", "policy", "runtime R", "misses M", "walk cycles C", "vs 4KB")

	var base uint64
	for _, policy := range []string{"4KB", "THP", "THP-frag", "libhugetlbfs", "mosalloc-2MB"} {
		ctr, err := runUnder(w, plat, policy)
		if err != nil {
			log.Fatalf("%s under %s: %v", name, policy, err)
		}
		if policy == "4KB" {
			base = ctr.R
		}
		speedup := 100 * (float64(base) - float64(ctr.R)) / float64(base)
		fmt.Printf("%-14s %14d %12d %14d %9.1f%%\n", policy, ctr.R, ctr.M, ctr.C, speedup)
	}
}

// runUnder generates the workload's trace with the given allocation policy
// in place and replays it. Each policy yields its own addresses, so the
// trace is regenerated per policy.
func runUnder(w mosaic.Workload, plat mosaic.Platform, policy string) (mosaic.Counters, error) {
	proc, err := mosaic.NewProcess(1 << 38)
	if err != nil {
		return mosaic.Counters{}, err
	}
	heap, anon := w.PoolBytes()

	switch policy {
	case "4KB", "THP", "THP-frag":
		// Plain kernel allocation: 4KB pages everywhere.
	case "libhugetlbfs":
		if _, err := mosaic.AttachLibhugetlbfs(proc, mosaic.Page2M, heap+anon); err != nil {
			return mosaic.Counters{}, err
		}
	case "mosalloc-2MB":
		cfg := mosaic.MosallocConfig{
			HeapPool:      mosaic.UniformPool(mosaic.Page2M, heap),
			AnonPool:      mosaic.UniformPool(mosaic.Page2M, anon),
			FilePoolBytes: 1 << 20,
		}
		if _, err := mosaic.AttachMosalloc(proc, cfg); err != nil {
			return mosaic.Counters{}, err
		}
	default:
		return mosaic.Counters{}, fmt.Errorf("unknown policy %q", policy)
	}

	tr, err := w.Generate(mosaic.NewAllocator(proc))
	if err != nil {
		return mosaic.Counters{}, err
	}

	switch policy {
	case "THP":
		if _, err := mosaic.RunTHPScan(proc, mosaic.DefaultTHPConfig()); err != nil {
			return mosaic.Counters{}, err
		}
	case "THP-frag":
		cfg := mosaic.DefaultTHPConfig()
		cfg.SuccessRate = 0.3 // heavily fragmented physical memory
		cfg.Seed = 42
		if _, err := mosaic.RunTHPScan(proc, cfg); err != nil {
			return mosaic.Counters{}, err
		}
	}

	return mosaic.RunTrace(plat, proc, tr)
}
