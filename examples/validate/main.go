// Model validation: the paper's §VII-D case study. Train every runtime
// model on the 54 mosaics of 4KB and 2MB pages, then predict the held-out
// layout that uses only 1GB pages — the configuration a partial simulator
// of a hypothetical design would hand the model. A model that cannot
// predict its own machine's 1GB layout cannot be trusted to predict a new
// design (§IV).
package main

import (
	"fmt"
	"log"
	"time"

	"mosaic"
)

func main() {
	runner := mosaic.NewRunner()
	plat := mosaic.SandyBridge
	names := []string{"basu", "yaniv", "poly1", "mosmodel"}

	benchmarks := []string{"gups/8GB", "spec06/mcf", "gapbs/pr-twitter", "xsbench/4GB"}
	fmt.Printf("predicting the 1GB-pages layout on %s (train: 54 4KB/2MB mosaics)\n\n", plat.Name)
	fmt.Printf("%-18s", "workload")
	for _, n := range names {
		fmt.Printf(" %10s", n)
	}
	fmt.Println()

	for _, bench := range benchmarks {
		w, err := mosaic.WorkloadByName(bench)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ds, err := runner.Collect(w, plat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s", bench)
		for _, name := range names {
			m, err := mosaic.NewModel(name)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.Fit(ds.Samples); err != nil {
				log.Fatal(err)
			}
			s := ds.Sample1G
			pred := m.Predict(s.H, s.M, s.C)
			relErr := (pred - s.R) / s.R
			fmt.Printf(" %9.2f%%", 100*relErr)
		}
		fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
	}

	fmt.Println("\nSigned errors: negative = the model is optimistic (predicts a")
	fmt.Println("runtime below the measured one). Mosmodel stays within a few")
	fmt.Println("percent; the two-point linear models can be far off exactly at")
	fmt.Println("the near-zero-overhead operating point new designs target.")
}
