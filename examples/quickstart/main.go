// Quickstart: run one workload on one modelled machine under three memory
// layouts — all 4KB pages, all 2MB pages, and a half-and-half mosaic — and
// print the performance counters the paper's runtime models consume.
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	w, err := mosaic.WorkloadByName("gups/8GB")
	if err != nil {
		log.Fatal(err)
	}

	runner := mosaic.NewRunner()
	wd, err := runner.Prepare(w) // generates the trace once
	if err != nil {
		log.Fatal(err)
	}

	target := wd.Target
	layouts := []mosaic.Layout{
		target.Baseline4K(),
		target.Baseline2M(),
		// A mosaic: the first half of the used space on 2MB pages.
		target.GrowingWindows(2)[1],
	}

	fmt.Printf("workload %s on %s (footprint %d MB)\n\n",
		w.Name(), mosaic.SandyBridge.Name, wd.Trace.Footprint()>>20)
	fmt.Printf("%-10s %14s %12s %12s %14s %8s\n",
		"layout", "runtime R", "L2 hits H", "misses M", "walk cycles C", "IPC")
	for _, lay := range layouts {
		ctr, err := runner.RunLayout(wd, mosaic.SandyBridge, lay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %12d %12d %14d %8.2f\n",
			lay.Name, ctr.R, ctr.H, ctr.M, ctr.C, ctr.IPC())
	}

	fmt.Println("\nHugepages shorten page walks (fewer levels) and widen TLB")
	fmt.Println("reach, so R, M, and C all drop as 2MB coverage grows.")
}
