// Design-space exploration: the architect's use case — the paper's
// Figure 1 pipeline, end to end.
//
// A researcher wants to estimate how a hypothetical Broadwell with a
// doubled L2 TLB and bigger page-walk caches would run a workload, without
// a cycle-accurate simulation. The flow is exactly the paper's:
//
//  1. Measure the workload on the *real* machine under many Mosalloc
//     layouts and fit Mosmodel to (H, M, C) → R.
//  2. Run a *partial simulation* of the new design — only the TLBs, walk
//     caches, and walker, no timing model — to obtain its (H, M, C).
//  3. Feed those into Mosmodel to predict the runtime.
//
// Because our "real machine" is itself a model, the example can also run
// the full machine with the modified TLB and check the prediction — the
// check real researchers cannot afford, and the reason the paper insists a
// model must first predict its own machine (§IV).
package main

import (
	"fmt"
	"log"
	"time"

	"mosaic"
)

func main() {
	runner := mosaic.NewRunner()
	base := mosaic.Broadwell
	w, err := mosaic.WorkloadByName("xsbench/4GB")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: fit Mosmodel against the baseline machine.
	fmt.Printf("fitting mosmodel: %s on %s (54 layouts)...\n", w.Name(), base.Name)
	ds, err := runner.Collect(w, base)
	if err != nil {
		log.Fatal(err)
	}
	model, err := mosaic.NewModel("mosmodel")
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(ds.Samples); err != nil {
		log.Fatal(err)
	}
	s4k, _ := ds.Baseline("4KB")
	fmt.Printf("baseline 4KB runtime: %.0f cycles (H=%.0f M=%.0f C=%.0f)\n\n",
		s4k.R, s4k.H, s4k.M, s4k.C)

	// Step 2: the hypothetical design — double the L2 TLB, bigger PWCs.
	newDesign := base
	newDesign.Name = "Broadwell+2xSTLB"
	newDesign.TLB.L2Entries4K *= 2
	newDesign.PWC.PDEntries *= 2
	fmt.Printf("hypothetical design: %s (L2 TLB %d→%d entries)\n",
		newDesign.Name, base.TLB.L2Entries4K, newDesign.TLB.L2Entries4K)

	// Partially simulate the new design's virtual-memory subsystem: no
	// timing model runs; the output is only (H, M, C).
	wd, err := runner.Prepare(w)
	if err != nil {
		log.Fatal(err)
	}
	lay := wd.Target.Baseline4K()
	t0 := time.Now()
	pm, err := runner.PartialSimulate(wd, newDesign, lay, true)
	if err != nil {
		log.Fatal(err)
	}
	partialTime := time.Since(t0)
	fmt.Printf("partial-simulation output: H=%d M=%d C=%d  (%.0f ms)\n\n",
		pm.H, pm.M, pm.C, float64(partialTime.Microseconds())/1000)

	// Step 3: predict the runtime from the partial simulation.
	predicted := model.Predict(float64(pm.H), float64(pm.M), float64(pm.C))

	// The check the paper could not do for new designs: run the "full
	// machine" with the modified virtual memory and compare.
	t0 = time.Now()
	ctr, err := runner.RunLayout(wd, newDesign, lay)
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(t0)
	actual := float64(ctr.R)

	fmt.Printf("mosmodel prediction: %.0f cycles\n", predicted)
	fmt.Printf("full-model runtime:  %.0f cycles\n", actual)
	fmt.Printf("prediction error:    %.2f%%\n", 100*(predicted-actual)/actual)
	fmt.Printf("design speedup:      %.1f%% over baseline 4KB\n\n",
		100*(s4k.R-actual)/s4k.R)
	fmt.Printf("partial simulation took %.1fx less time than the full model\n",
		float64(fullTime)/float64(partialTime))
	fmt.Println("(the paper reports 100x-1000x against cycle-accurate gem5;")
	fmt.Println("our \"full machine\" is itself only a timing model, so the")
	fmt.Println("gap here is smaller but the direction is the same)")
}
