// Hugepage tuning: the paper's "high-end user" use case (§V-B). Mosalloc
// can back just the TLB-hottest region of an application with hugepages,
// so an operator with a limited hugetlbfs reservation can ask: what is the
// smallest hugepage budget that recovers most of the all-2MB speedup?
//
// This example profiles spec06/mcf's TLB misses (the simulated-PEBS step),
// finds the hot region, and grows a hugepage window over it until ≥90% of
// the all-2MB gain is recovered.
package main

import (
	"fmt"
	"log"

	"mosaic"
)

func main() {
	w, err := mosaic.WorkloadByName("spec06/mcf")
	if err != nil {
		log.Fatal(err)
	}
	plat := mosaic.Broadwell
	runner := mosaic.NewRunner()
	wd, err := runner.Prepare(w)
	if err != nil {
		log.Fatal(err)
	}

	run := func(lay mosaic.Layout) uint64 {
		ctr, err := runner.RunLayout(wd, plat, lay)
		if err != nil {
			log.Fatal(err)
		}
		return ctr.R
	}

	target := wd.Target
	r4k := run(target.Baseline4K())
	r2m := run(target.Baseline2M())
	gain := float64(r4k) - float64(r2m)
	fmt.Printf("%s on %s: all-4KB %d cycles, all-2MB %d cycles (%.1f%% faster)\n\n",
		w.Name(), plat.Name, r4k, r2m, 100*gain/float64(r4k))

	profile := mosaic.ProfileMisses(wd.Trace, plat, target)
	hotStart, hotEnd := profile.HotRegion(0.90)
	fmt.Printf("hot region [%dMB, %dMB) holds 90%% of the TLB misses\n\n",
		hotStart>>20, hotEnd>>20)

	space := target.Space()
	fmt.Printf("%-24s %12s %14s %10s\n", "hugepage window", "2MB budget", "runtime", "recovered")
	hotSize := hotEnd - hotStart
	for mult := 1; mult <= 8; mult++ {
		end := hotStart + hotSize*uint64(mult)/2
		if end > space {
			end = space
		}
		lay := windowLayout(target, hotStart, end)
		r := run(lay)
		recovered := 0.0
		if gain > 0 {
			recovered = (float64(r4k) - float64(r)) / gain
		}
		fmt.Printf("%-24s %10dMB %14d %9.0f%%\n",
			fmt.Sprintf("[%dMB, %dMB)", hotStart>>20, end>>20), (end-hotStart)>>20, r, 100*recovered)
		if recovered >= 0.90 {
			fmt.Printf("\n→ a %dMB hugepage reservation recovers %.0f%% of the all-2MB\n",
				(end-hotStart)>>20, 100*recovered)
			fmt.Printf("  speedup; the full footprint is %dMB.\n", space>>20)
			return
		}
		if end == space {
			break
		}
	}
	fmt.Println("\n→ this workload needs hugepages over most of its footprint.")
}

// windowLayout builds a layout whose [start, end) window of the
// concatenated used space is 2MB-backed, splitting the window across the
// heap and anonymous pools.
func windowLayout(t mosaic.LayoutTarget, start, end uint64) mosaic.Layout {
	clamp := func(v, lo, hi uint64) uint64 {
		return min(max(v, lo), hi)
	}
	heapS, heapE := clamp(start, 0, t.HeapUsed), clamp(end, 0, t.HeapUsed)
	anonS := clamp(start, t.HeapUsed, t.Space()) - t.HeapUsed
	anonE := clamp(end, t.HeapUsed, t.Space()) - t.HeapUsed
	return mosaic.Layout{
		Name: fmt.Sprintf("window-%dMB", (end-start)>>20),
		Cfg: mosaic.MosallocConfig{
			HeapPool:      mosaic.WindowPool(t.HeapCap, heapS, heapE, mosaic.Page2M),
			AnonPool:      mosaic.WindowPool(t.AnonCap, anonS, anonE, mosaic.Page2M),
			FilePoolBytes: 1 << 20,
		},
	}
}
