package mosaic

import (
	"bytes"
	"testing"

	"mosaic/internal/trace"
	"mosaic/internal/workloads"
)

// TestTraceV02SmallerThanV01 is the on-disk format's acceptance test: for
// real bundled workload traces (not synthetic fixtures), the block-columnar
// MOSTRC02 encoding must come in at least 40% under the flat MOSTRC01 row
// format, and both encodings must round-trip losslessly.
func TestTraceV02SmallerThanV01(t *testing.T) {
	for _, name := range []string{"gups/8GB", "spec06/mcf"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		wd, err := benchRunner.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		tr := wd.Trace

		var v01, v02 bytes.Buffer
		if _, err := tr.WriteToV01(&v01); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.WriteTo(&v02); err != nil {
			t.Fatal(err)
		}
		ratio := float64(v02.Len()) / float64(v01.Len())
		t.Logf("%s: %d accesses, v01 %d bytes, v02 %d bytes (%.1f%%)",
			name, tr.Len(), v01.Len(), v02.Len(), 100*ratio)
		if ratio > 0.6 {
			t.Errorf("%s: v02 is %.1f%% of v01, want ≤ 60%%", name, 100*ratio)
		}

		for _, enc := range []struct {
			label string
			data  *bytes.Buffer
		}{{"v01", &v01}, {"v02", &v02}} {
			var got trace.Trace
			if _, err := got.ReadFrom(bytes.NewReader(enc.data.Bytes())); err != nil {
				t.Fatalf("%s: reading %s: %v", name, enc.label, err)
			}
			if got.Name != tr.Name || got.Len() != tr.Len() {
				t.Fatalf("%s: %s round-trip: name %q len %d, want %q len %d",
					name, enc.label, got.Name, got.Len(), tr.Name, tr.Len())
			}
			want, have := tr.Columns(), got.Columns()
			for i := 0; i < tr.Len(); i++ {
				if want.At(i) != have.At(i) {
					t.Fatalf("%s: %s round-trip: access %d is %+v, want %+v",
						name, enc.label, i, have.At(i), want.At(i))
				}
			}
		}
	}
}
