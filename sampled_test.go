// Top-level acceptance tests for sampled replay: a quick-protocol sweep
// over bundled workloads at sweep-scale trace lengths, replayed exact and
// under the default sampling config, must satisfy the accuracy contract of
// docs/timing-model.md — every statistically significant counter within 1%
// of exact replay, every counter within the sampling-noise envelope — while
// the sampled replay stage runs at least 5× faster. This is the bargain of
// systematic sampling with functional warmup (the SMARTS recipe): give up
// only what a ~5% sample physically cannot resolve, get back most of the
// replay time.
package mosaic

import (
	"math"
	"testing"

	"mosaic/internal/arch"
	"mosaic/internal/experiment"
	"mosaic/internal/pmu"
	"mosaic/internal/sim"
	"mosaic/internal/workloads"
)

// sampledSweepWorkloads are the bundled workloads the acceptance numbers
// are quoted on: a scatter kernel (gups) and a pointer chaser (mcf) — the
// two extremes of the suite's locality spectrum.
var sampledSweepWorkloads = []string{"gups/8GB", "spec06/mcf"}

// sampledStretch scales the bundled workloads' trace length for the
// acceptance sweep. At the default ~120K-access budget a systematic
// sampler barely fits a handful of windows; real deployments replay much
// longer traces, and both the ≥5× speedup and the 1% accuracy claim are
// only meaningful in that regime.
const sampledStretch = 32

// minSampledCount mirrors cmd/mosbench's guard: counters whose exact value
// is tiny turn one-count differences into huge relative errors without
// mattering to any fitted model.
const minSampledCount = 1000

// sigSampledEvents is the significance threshold of the accuracy contract:
// with at least this many of a counter's events inside measurement windows,
// sampling noise (Poisson with the empirical ~2× overdispersion) sits below
// 1%, so such counters are held to the strict 1% bound.
const sigSampledEvents = 40_000

// sampledErrorBound is the per-counter tolerance: 1% once a counter is
// statistically significant, and the sampling-noise envelope K/sqrt(events)
// below that. K=8 covers the empirical overdispersion of the bundled
// workloads with ~30% margin.
func sampledErrorBound(sampledEvents float64) float64 {
	return math.Max(0.01, 8/math.Sqrt(sampledEvents))
}

// sampledCounterValues flattens the counter set for comparison.
func sampledCounterValues(c pmu.Counters) []uint64 {
	return []uint64{
		c.R, c.H, c.M, c.C, c.Instructions,
		c.L1DLoadsProgram, c.L1DLoadsWalker,
		c.L2LoadsProgram, c.L2LoadsWalker,
		c.L3LoadsProgram, c.L3LoadsWalker,
		c.DRAMLoadsProgram, c.DRAMLoadsWalker,
		c.TLBLookups,
	}
}

var sampledCounterNames = []string{
	"R", "H", "M", "C", "Instructions",
	"L1DLoadsProgram", "L1DLoadsWalker",
	"L2LoadsProgram", "L2LoadsWalker",
	"L3LoadsProgram", "L3LoadsWalker",
	"DRAMLoadsProgram", "DRAMLoadsWalker",
	"TLBLookups",
}

// runSampledSweep collects the quick-protocol datasets for the stretched
// bundled workloads on the given platforms under one sampling config,
// returning the datasets and the replay-stage seconds.
func runSampledSweep(tb testing.TB, dir string, plats []arch.Platform, s sim.Sampling) ([]*experiment.Dataset, float64) {
	tb.Helper()
	var ws []workloads.Workload
	for _, name := range sampledSweepWorkloads {
		w, err := workloads.ByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		ws = append(ws, workloads.Stretched(w, sampledStretch))
	}
	r := experiment.NewRunner()
	r.Proto = experiment.Quick
	r.TraceDir = dir
	r.Sampling = s
	dss, err := r.CollectAll(ws, plats, nil)
	if err != nil {
		tb.Fatal(err)
	}
	var replay float64
	for _, st := range r.StageTimes() {
		if st.Stage == sim.StageReplay {
			replay = st.Total.Seconds()
		}
	}
	return dss, replay
}

// sampledSweepErrors holds the accuracy summary of a sampled-vs-exact
// sweep comparison under the docs/timing-model.md contract.
type sampledSweepErrors struct {
	// Significant is the number of (dataset, layout, counter) entries with
	// at least sigSampledEvents events inside measurement windows; WorstSig
	// is their worst relative error (the headline ≤1% bound) at WorstSigAt.
	Significant int
	WorstSig    float64
	WorstSigAt  string
	// WorstEnvRatio is the worst relErr/bound ratio over all compared
	// entries — > 1 means some counter escaped the noise envelope.
	WorstEnvRatio float64
	WorstEnvAt    string
}

// compareSampledSweeps checks two sweeps' datasets (matched by position —
// both sweeps run the same protocol in the same order) against the
// accuracy contract.
func compareSampledSweeps(tb testing.TB, exact, sampled []*experiment.Dataset) sampledSweepErrors {
	tb.Helper()
	if len(exact) != len(sampled) {
		tb.Fatalf("%d exact datasets vs %d sampled", len(exact), len(sampled))
	}
	var out sampledSweepErrors
	for d := range exact {
		if exact[d].Platform != sampled[d].Platform {
			tb.Fatalf("dataset order mismatch: %s@%s vs %s@%s",
				exact[d].Workload, exact[d].Platform, sampled[d].Workload, sampled[d].Platform)
		}
		if sampled[d].TotalAccesses == 0 {
			tb.Fatalf("%s@%s: sampled sweep recorded no coverage", sampled[d].Workload, sampled[d].Platform)
		}
		f := float64(sampled[d].MeasuredAccesses) / float64(sampled[d].TotalAccesses)
		for layoutName, ec := range exact[d].Counters {
			sc, ok := sampled[d].Counters[layoutName]
			if !ok {
				tb.Fatalf("sampled sweep missing layout %s", layoutName)
			}
			ev, sv := sampledCounterValues(ec), sampledCounterValues(sc)
			for i := range ev {
				if ev[i] < minSampledCount {
					continue
				}
				rel := math.Abs(float64(sv[i])-float64(ev[i])) / float64(ev[i])
				events := float64(ev[i]) * f
				at := exact[d].Workload + "@" + exact[d].Platform + "/" + layoutName + "/" + sampledCounterNames[i]
				if events >= sigSampledEvents {
					out.Significant++
					if rel > out.WorstSig {
						out.WorstSig, out.WorstSigAt = rel, at
					}
				}
				if ratio := rel / sampledErrorBound(events); ratio > out.WorstEnvRatio {
					out.WorstEnvRatio, out.WorstEnvAt = ratio, at
				}
			}
		}
	}
	return out
}

// TestSampledReplayAccuracy is the acceptance bound: on sweep-scale traces
// the default sampling config keeps every statistically significant
// counter within 1% of the exact sweep — and every counter inside the
// sampling-noise envelope — while cutting replay time by at least 5×.
func TestSampledReplayAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled-vs-exact sweep comparison is not short")
	}
	dir := t.TempDir()
	plats := []arch.Platform{arch.SandyBridge}
	exact, exactSec := runSampledSweep(t, dir, plats, sim.Sampling{})
	sampled, sampledSec := runSampledSweep(t, dir, plats, sim.DefaultSampling)

	errs := compareSampledSweeps(t, exact, sampled)
	t.Logf("replay: %.2fs exact, %.2fs sampled (%.1f×); %d significant entries, worst %.4f%% (%s); worst envelope ratio %.2f (%s)",
		exactSec, sampledSec, exactSec/sampledSec,
		errs.Significant, 100*errs.WorstSig, errs.WorstSigAt, errs.WorstEnvRatio, errs.WorstEnvAt)
	if errs.Significant < 100 {
		t.Errorf("only %d significant counter entries — the sweep is too small to claim anything", errs.Significant)
	}
	if errs.WorstSig > 0.01 {
		t.Errorf("significant counter off by %.4f%% at %s, want ≤ 1%%", 100*errs.WorstSig, errs.WorstSigAt)
	}
	if errs.WorstEnvRatio > 1 {
		t.Errorf("counter outside the sampling-noise envelope at %s (ratio %.2f)", errs.WorstEnvAt, errs.WorstEnvRatio)
	}
	if sampledSec <= 0 || exactSec/sampledSec < 5 {
		t.Errorf("sampled replay %.2fs vs exact %.2fs: %.1f× speedup, want ≥ 5×",
			sampledSec, exactSec, exactSec/sampledSec)
	}
	for _, ds := range sampled {
		if ds.MeasuredAccesses == 0 || ds.MeasuredAccesses >= ds.TotalAccesses {
			t.Errorf("%s@%s: coverage %d/%d accesses, want a strict subset",
				ds.Workload, ds.Platform, ds.MeasuredAccesses, ds.TotalAccesses)
		}
	}
	for _, ds := range exact {
		if ds.MeasuredAccesses != 0 || ds.TotalAccesses != 0 {
			t.Errorf("%s@%s: exact sweep records coverage %d/%d, want 0/0",
				ds.Workload, ds.Platform, ds.MeasuredAccesses, ds.TotalAccesses)
		}
	}
}

// BenchmarkSweepQuickSampled is the sampled-replay headline benchmark: the
// stretched quick sweep on all three platforms under the default sampling
// config, reporting the speedup over an exact sweep and the worst
// significant-counter relative error as metrics — the numbers the bench
// smoke job publishes into BENCH_sweep.json.
func BenchmarkSweepQuickSampled(b *testing.B) {
	plats := []arch.Platform{arch.SandyBridge, arch.Haswell, arch.Broadwell}
	dir := b.TempDir()
	exact, exactSec := runSampledSweep(b, dir, plats, sim.Sampling{})
	b.ResetTimer()
	var sampled []*experiment.Dataset
	var sampledSec float64
	for i := 0; i < b.N; i++ {
		sampled, sampledSec = runSampledSweep(b, dir, plats, sim.DefaultSampling)
	}
	errs := compareSampledSweeps(b, exact, sampled)
	b.ReportMetric(exactSec/sampledSec, "speedup_vs_exact")
	b.ReportMetric(100*errs.WorstSig, "maxrelerr_%")
}
