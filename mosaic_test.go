package mosaic_test

import (
	"testing"

	"mosaic"
)

func TestFacadeEndToEnd(t *testing.T) {
	// The README quickstart, as a test: measure a workload under three
	// layouts through the public API only.
	w, err := mosaic.WorkloadByName("gups/8GB")
	if err != nil {
		t.Fatal(err)
	}
	runner := mosaic.NewRunner()
	wd, err := runner.Prepare(w)
	if err != nil {
		t.Fatal(err)
	}
	target := wd.Target
	c4, err := runner.RunLayout(wd, mosaic.SandyBridge, target.Baseline4K())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := runner.RunLayout(wd, mosaic.SandyBridge, target.Baseline2M())
	if err != nil {
		t.Fatal(err)
	}
	if c4.R <= c2.R || c4.M <= c2.M {
		t.Errorf("hugepages should help: 4KB %v, 2MB %v", c4, c2)
	}
}

func TestFacadeRegistries(t *testing.T) {
	if got := len(mosaic.Workloads()); got != 19 {
		t.Errorf("workloads = %d, want 19", got)
	}
	if got := len(mosaic.Platforms()); got != 3 {
		t.Errorf("platforms = %d, want 3", got)
	}
	names := mosaic.ModelNames()
	if len(names) != 9 {
		t.Errorf("models = %d, want 9", len(names))
	}
	for _, n := range names {
		if _, err := mosaic.NewModel(n); err != nil {
			t.Errorf("NewModel(%s): %v", n, err)
		}
	}
	if _, err := mosaic.PlatformByName("SandyBridge"); err != nil {
		t.Error(err)
	}
	if _, err := mosaic.WorkloadByName("spec06/mcf"); err != nil {
		t.Error(err)
	}
}

func TestFacadeModelFit(t *testing.T) {
	samples := []mosaic.Sample{
		{Layout: "4KB", H: 100, M: 200, C: 4000, R: 10000},
		{Layout: "2MB", H: 10, M: 20, C: 400, R: 7000},
	}
	m, err := mosaic.NewModel("yaniv")
	if err != nil {
		t.Fatal(err)
	}
	maxErr, geoErr, err := mosaic.EvaluateModel(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Yaniv passes through both anchors exactly.
	if maxErr > 1e-9 {
		t.Errorf("maxErr = %v", maxErr)
	}
	_ = geoErr
}

func TestFacadeErrorMetrics(t *testing.T) {
	y := []float64{100, 200}
	yhat := []float64{90, 220}
	if got := mosaic.MaxAbsRelErr(y, yhat); got != 0.1 {
		t.Errorf("MaxAbsRelErr = %v", got)
	}
	if got := mosaic.GeoMeanAbsRelErr(y, yhat); got <= 0 {
		t.Errorf("GeoMeanAbsRelErr = %v", got)
	}
}

func TestFacadeCrossValidate(t *testing.T) {
	samples := make([]mosaic.Sample, 30)
	for i := range samples {
		c := float64(i) * 1e5
		samples[i] = mosaic.Sample{Layout: "mid", C: c, M: c / 30, H: c / 60, R: 1e7 + 0.7*c}
	}
	samples[0].Layout = "2MB"
	samples[len(samples)-1].Layout = "4KB"
	e, err := mosaic.CrossValidateModel("poly1", samples, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.01 {
		t.Errorf("CV error %v on linear ground truth", e)
	}
	if _, err := mosaic.CrossValidateModel("bogus", samples, 5, 1); err == nil {
		t.Error("unknown model should fail")
	}
}

func TestFacadeMosallocFlow(t *testing.T) {
	proc, err := mosaic.NewProcess(1 << 36)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := mosaic.ParseLayout("4KB:8MB,2MB:16MB")
	if err != nil {
		t.Fatal(err)
	}
	msl, err := mosaic.AttachMosalloc(proc, mosaic.MosallocConfig{
		HeapPool:      heap,
		AnonPool:      mosaic.UniformPool(mosaic.Page2M, 16<<20),
		FilePoolBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := proc.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !msl.HeapRegion().Contains(a) {
		t.Error("malloc escaped the heap pool")
	}
	if ps, ok := msl.PageSizeAt(a); !ok || ps != mosaic.Page4K {
		t.Errorf("first heap MB should be 4KB-backed, got %v/%v", ps, ok)
	}
}

func TestFacadeWindowPool(t *testing.T) {
	cfg := mosaic.WindowPool(32<<20, 8<<20, 16<<20, mosaic.Page2M)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	by := cfg.BytesBySize()
	if by[mosaic.Page2M] != 8<<20 {
		t.Errorf("window bytes = %d", by[mosaic.Page2M])
	}
}
